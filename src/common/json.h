// Minimal JSON reading/writing for failure artifacts and tool output.
//
// The repro/replay pipeline needs a self-describing on-disk format that a
// human can read and an external tool can consume; JSON is the obvious pick
// and the schema is tiny, so a ~200-line value type beats a dependency.
// Supported: null, bool, 64-bit signed integers, doubles, strings, arrays,
// objects.  Object keys keep insertion order so dumped artifacts are stable
// and diffable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace wfsort {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::int64_t i) : type_(Type::kInt), int_(i) {}
  Json(std::uint64_t u) : type_(Type::kInt), int_(static_cast<std::int64_t>(u)) {}
  Json(int i) : type_(Type::kInt), int_(i) {}
  Json(double d) : type_(Type::kDouble), double_(d) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  // --- builders ---
  Json& push_back(Json v) {
    arr_.push_back(std::move(v));
    return *this;
  }
  Json& set(const std::string& key, Json v) {
    for (auto& [k, existing] : obj_) {
      if (k == key) {
        existing = std::move(v);
        return *this;
      }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
  }

  // --- accessors (checked; wrong-type access aborts via WFSORT_CHECK) ---
  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_u64() const;
  double as_double() const;  // accepts kInt too
  const std::string& as_string() const;
  const std::vector<Json>& items() const;
  // Object members in insertion order (the dumped order).
  const std::vector<std::pair<std::string, Json>>& object_items() const;

  // Object lookup; returns nullptr when absent (callers choose defaults).
  const Json* find(const std::string& key) const;
  // Checked lookup: the key must exist.
  const Json& at(const std::string& key) const;

  // --- serialization ---
  // Two-space-indented, trailing newline; stable field order.
  std::string dump(int indent = 0) const;

  // Single-line serialization (no whitespace, no trailing newline) — the
  // JSONL record form the live monitor and the bench history append.
  std::string dump_compact() const;

  // Parse a whole document.  Returns a null value and sets *error on failure
  // (error stays empty on success).
  static Json parse(const std::string& text, std::string* error);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;

  void dump_to(std::string& out, int indent) const;
  void dump_compact_to(std::string& out) const;
  friend class JsonParser;
};

}  // namespace wfsort
