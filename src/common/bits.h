// Bit-manipulation helpers shared by the tree algorithms.
//
// Binary trees throughout the library (WATs, winner-selection trees, fat
// trees) are stored as implicit heaps: node i has children 2i+1 / 2i+2 and
// parent (i-1)/2.  These helpers keep the index arithmetic in one place.
#pragma once

#include <bit>
#include <cstdint>

#include "common/check.h"

namespace wfsort {

// True iff x is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// floor(log2(x)); requires x >= 1.
constexpr std::uint32_t log2_floor(std::uint64_t x) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x | 1));
}

// ceil(log2(x)); requires x >= 1.  log2_ceil(1) == 0.
constexpr std::uint32_t log2_ceil(std::uint64_t x) {
  return x <= 1 ? 0u : log2_floor(x - 1) + 1u;
}

// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return x <= 1 ? 1 : std::uint64_t{1} << log2_ceil(x);
}

// Reverse the low `bits` bits of x (bits <= 64; higher input bits are
// dropped).  Enumerating 0..2^bits-1 through bit_reverse visits every value
// once in an order where consecutive outputs differ in their HIGH bits — a
// deterministic shuffle, used to break up sorted runs before insertion.
constexpr std::uint64_t bit_reverse(std::uint64_t x, std::uint32_t bits) {
  std::uint64_t r = 0;
  for (std::uint32_t b = 0; b < bits; ++b) {
    r |= ((x >> b) & 1u) << (bits - 1u - b);
  }
  return r;
}

// Integer square root (floor).
constexpr std::uint64_t isqrt(std::uint64_t x) {
  std::uint64_t r = 0;
  std::uint64_t bit = std::uint64_t{1} << 62;
  while (bit > x) bit >>= 2;
  while (bit != 0) {
    if (x >= r + bit) {
      x -= r + bit;
      r = (r >> 1) + bit;
    } else {
      r >>= 1;
    }
    bit >>= 2;
  }
  return r;
}

// --- Implicit complete binary tree over 2*L-1 nodes with L leaves -----------
//
// Layout: node 0 is the root; leaves occupy indices [L-1, 2L-2] in left-to-
// right order.  L must be a power of two.

struct HeapTree {
  std::uint64_t leaves;  // number of leaves, power of two

  constexpr explicit HeapTree(std::uint64_t num_leaves) : leaves(num_leaves) {}

  constexpr std::uint64_t nodes() const { return 2 * leaves - 1; }
  constexpr std::uint64_t root() const { return 0; }
  constexpr std::uint32_t depth() const { return log2_floor(leaves); }

  constexpr bool is_leaf(std::uint64_t i) const { return i >= leaves - 1; }
  constexpr bool is_root(std::uint64_t i) const { return i == 0; }

  constexpr std::uint64_t left(std::uint64_t i) const { return 2 * i + 1; }
  constexpr std::uint64_t right(std::uint64_t i) const { return 2 * i + 2; }
  constexpr std::uint64_t parent(std::uint64_t i) const { return (i - 1) / 2; }
  constexpr std::uint64_t sibling(std::uint64_t i) const {
    return ((i & 1) != 0) ? i + 1 : i - 1;  // odd = left child, even = right
  }

  // Index of the k-th leaf (k in [0, leaves)).
  constexpr std::uint64_t leaf(std::uint64_t k) const { return leaves - 1 + k; }
  // Inverse of leaf().
  constexpr std::uint64_t leaf_rank(std::uint64_t i) const { return i - (leaves - 1); }

  // Depth of node i (root = 0).
  constexpr std::uint32_t node_depth(std::uint64_t i) const { return log2_floor(i + 1); }
};

}  // namespace wfsort
