#include "common/cli.h"

#include <charconv>
#include <sstream>

#include "common/check.h"

namespace wfsort {

void CliFlags::add_u64(const std::string& name, std::uint64_t default_value,
                       std::string help) {
  Flag f;
  f.kind = Kind::kU64;
  f.help = std::move(help);
  f.u64_value = default_value;
  WFSORT_CHECK(flags_.emplace(name, std::move(f)).second);
  declaration_order_.push_back(name);
}

void CliFlags::add_string(const std::string& name, std::string default_value,
                          std::string help) {
  Flag f;
  f.kind = Kind::kString;
  f.help = std::move(help);
  f.str_value = std::move(default_value);
  WFSORT_CHECK(flags_.emplace(name, std::move(f)).second);
  declaration_order_.push_back(name);
}

void CliFlags::add_bool(const std::string& name, bool default_value, std::string help) {
  Flag f;
  f.kind = Kind::kBool;
  f.help = std::move(help);
  f.bool_value = default_value;
  WFSORT_CHECK(flags_.emplace(name, std::move(f)).second);
  declaration_order_.push_back(name);
}

bool CliFlags::set_value(Flag& flag, const std::string& name, const std::string& value) {
  switch (flag.kind) {
    case Kind::kU64: {
      std::uint64_t parsed = 0;
      const auto* begin = value.data();
      const auto* end = value.data() + value.size();
      const auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc() || ptr != end) {
        error_ = "flag --" + name + " expects an unsigned integer, got '" + value + "'";
        return false;
      }
      flag.u64_value = parsed;
      return true;
    }
    case Kind::kString:
      flag.str_value = value;
      return true;
    case Kind::kBool:
      if (value == "true" || value == "1") {
        flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        flag.bool_value = false;
      } else {
        error_ = "flag --" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      return true;
  }
  return false;
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);

    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }

    // --no-<bool>.
    if (!has_value && name.rfind("no-", 0) == 0) {
      const std::string base = name.substr(3);
      auto it = flags_.find(base);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        it->second.bool_value = false;
        continue;
      }
    }

    auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    Flag& flag = it->second;

    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "flag --" + name + " needs a value";
        return false;
      }
      value = argv[++i];
    }
    if (!set_value(flag, name, value)) return false;
  }
  return true;
}

const CliFlags::Flag* CliFlags::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  WFSORT_CHECK(it != flags_.end());
  WFSORT_CHECK(it->second.kind == kind);
  return &it->second;
}

std::uint64_t CliFlags::u64(const std::string& name) const {
  return find(name, Kind::kU64)->u64_value;
}

const std::string& CliFlags::str(const std::string& name) const {
  return find(name, Kind::kString)->str_value;
}

bool CliFlags::flag(const std::string& name) const {
  return find(name, Kind::kBool)->bool_value;
}

std::string CliFlags::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nflags:\n";
  for (const std::string& name : declaration_order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    switch (f.kind) {
      case Kind::kU64:
        os << "=N (default " << f.u64_value << ")";
        break;
      case Kind::kString:
        os << "=S (default '" << f.str_value << "')";
        break;
      case Kind::kBool:
        os << " / --no-" << name << " (default " << (f.bool_value ? "true" : "false")
           << ")";
        break;
    }
    os << "\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace wfsort
