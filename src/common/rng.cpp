#include "common/rng.h"

#include "common/check.h"

namespace wfsort {

std::uint64_t Rng::below(std::uint64_t bound) {
  WFSORT_DCHECK(bound > 0);
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace wfsort
