#include "common/rng.h"

// Rng is fully inline (see rng.h); this translation unit intentionally left
// almost empty so the library's source list stays stable.
