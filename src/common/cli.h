// Minimal command-line flag parsing for the tools and benches.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Flags are declared with defaults and help text; parse() consumes argv,
// reports unknown flags, and renders --help.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wfsort {

class CliFlags {
 public:
  explicit CliFlags(std::string program_description)
      : description_(std::move(program_description)) {}

  // Declaration (call before parse()).
  void add_u64(const std::string& name, std::uint64_t default_value, std::string help);
  void add_string(const std::string& name, std::string default_value, std::string help);
  void add_bool(const std::string& name, bool default_value, std::string help);

  // Returns false on error (message in error()); sets help_requested() for
  // --help.
  bool parse(int argc, const char* const* argv);

  std::uint64_t u64(const std::string& name) const;
  const std::string& str(const std::string& name) const;
  bool flag(const std::string& name) const;

  // Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }
  std::string help_text() const;

 private:
  enum class Kind { kU64, kString, kBool };
  struct Flag {
    Kind kind = Kind::kBool;
    std::string help;
    std::uint64_t u64_value = 0;
    std::string str_value;
    bool bool_value = false;
  };

  bool set_value(Flag& flag, const std::string& name, const std::string& value);
  const Flag* find(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> declaration_order_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace wfsort
