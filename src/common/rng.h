// Deterministic pseudo-random number generation.
//
// Every randomized component of the library (LC-WAT probing, winner-selection
// coin flips, write-most target choice, workload generation) draws from an
// explicitly-seeded Rng so that simulations, tests and benchmarks are
// reproducible.  The generator is xoshiro256**, seeded via SplitMix64 — both
// are public-domain algorithms by Blackman & Vigna.
#pragma once

#include <cstdint>
#include <span>

#include "common/check.h"

namespace wfsort {

// SplitMix64: used to expand a single 64-bit seed into generator state, and
// as a cheap standalone mixer for per-processor seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless 64-bit mixer (SplitMix64 finalizer).  Used to derive
// deterministic pseudo-random decision bits, e.g. spreading processors
// across tree children below the levels their PID bits cover.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  // Derive an independent stream for sub-component `stream_id` — used to give
  // every virtual processor its own generator from one experiment seed.
  Rng fork(std::uint64_t stream_id) const {
    std::uint64_t mix = s_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^ (s_[3] + stream_id);
    return Rng(mix);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  // Uniform integer in [0, bound) without modulo bias (Lemire's nearly-
  // divisionless method).  Inline: this sits under the simulator's per-round
  // arbitration shuffle.
  std::uint64_t below(std::uint64_t bound) {
    WFSORT_DCHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) [[unlikely]] {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  // Fair coin.
  bool coin() { return (next() & 1) != 0; }

  // Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> data) {
    for (std::size_t i = data.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(data[i - 1], data[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace wfsort
