#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/check.h"

namespace wfsort {

bool Json::as_bool() const {
  WFSORT_CHECK(type_ == Type::kBool);
  return bool_;
}

std::int64_t Json::as_int() const {
  WFSORT_CHECK(type_ == Type::kInt);
  return int_;
}

std::uint64_t Json::as_u64() const {
  WFSORT_CHECK(type_ == Type::kInt);
  return static_cast<std::uint64_t>(int_);
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  WFSORT_CHECK(type_ == Type::kDouble);
  return double_;
}

const std::string& Json::as_string() const {
  WFSORT_CHECK(type_ == Type::kString);
  return str_;
}

const std::vector<Json>& Json::items() const {
  WFSORT_CHECK(type_ == Type::kArray);
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::object_items() const {
  WFSORT_CHECK(type_ == Type::kObject);
  return obj_;
}

const Json* Json::find(const std::string& key) const {
  WFSORT_CHECK(type_ == Type::kObject);
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  WFSORT_CHECK(v != nullptr);
  return *v;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_indent(std::string& out, int n) { out.append(static_cast<std::size_t>(n), ' '); }

}  // namespace

void Json::dump_to(std::string& out, int indent) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Type::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out += buf;
      break;
    }
    case Type::kString:
      append_escaped(out, str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        append_indent(out, indent + 2);
        arr_[i].dump_to(out, indent + 2);
        if (i + 1 < arr_.size()) out += ',';
        out += '\n';
      }
      append_indent(out, indent);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        append_indent(out, indent + 2);
        append_escaped(out, obj_[i].first);
        out += ": ";
        obj_[i].second.dump_to(out, indent + 2);
        if (i + 1 < obj_.size()) out += ',';
        out += '\n';
      }
      append_indent(out, indent);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent);
  if (indent == 0) out += '\n';
  return out;
}

void Json::dump_compact_to(std::string& out) const {
  switch (type_) {
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out += ',';
        arr_[i].dump_compact_to(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out += ',';
        append_escaped(out, obj_[i].first);
        out += ':';
        obj_[i].second.dump_compact_to(out);
      }
      out += '}';
      break;
    }
    default:
      dump_to(out, 0);  // scalars render identically in both forms
      break;
  }
}

std::string Json::dump_compact() const {
  std::string out;
  dump_compact_to(out);
  return out;
}

// Recursive-descent parser.  Depth is bounded by the schema (artifacts nest
// three levels), but a hard cap keeps hostile inputs from overflowing the
// stack.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  Json run() {
    Json v = parse_value(0);
    skip_ws();
    if (ok() && pos_ != text_.size()) fail("trailing characters after document");
    return ok() ? v : Json();
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool ok() const { return error_->empty(); }

  void fail(const std::string& what) {
    if (ok()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return {};
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (literal("true")) return Json(true);
      fail("bad literal");
      return {};
    }
    if (c == 'f') {
      if (literal("false")) return Json(false);
      fail("bad literal");
      return {};
    }
    if (c == 'n') {
      if (literal("null")) return Json();
      fail("bad literal");
      return {};
    }
    return parse_number();
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      fail("expected string");
      return out;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return out;
            }
            unsigned cp = 0;
            auto [p, ec] = std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4,
                                           cp, 16);
            if (ec != std::errc() || p != text_.data() + pos_ + 4) {
              fail("bad \\u escape");
              return out;
            }
            pos_ += 4;
            // Artifacts only ever contain ASCII; encode the BMP code point
            // as UTF-8 anyway so round-trips are lossless.
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return out;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected value");
      return {};
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(v);
    }
    try {
      return Json(std::stod(tok));
    } catch (...) {
      fail("bad number '" + tok + "'");
      return {};
    }
  }

  Json parse_array(int depth) {
    Json arr = Json::array();
    consume('[');
    skip_ws();
    if (consume(']')) return arr;
    while (ok()) {
      arr.push_back(parse_value(depth + 1));
      if (consume(']')) return arr;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return arr;
      }
    }
    return arr;
  }

  Json parse_object(int depth) {
    Json obj = Json::object();
    consume('{');
    skip_ws();
    if (consume('}')) return obj;
    while (ok()) {
      skip_ws();
      std::string key = parse_string();
      if (!ok()) return obj;
      if (!consume(':')) {
        fail("expected ':'");
        return obj;
      }
      obj.set(key, parse_value(depth + 1));
      if (consume('}')) return obj;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return obj;
      }
    }
    return obj;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

Json Json::parse(const std::string& text, std::string* error) {
  error->clear();
  JsonParser p(text, error);
  return p.run();
}

}  // namespace wfsort
