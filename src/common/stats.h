// Small statistics toolkit for the experiment harness.
//
// The benchmarks report measured series (rounds, contention, work) against
// the paper's predicted asymptotics; Summary condenses repeated trials and
// fit_power_law / fit_log estimate growth exponents from a measured series.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"

namespace wfsort {

// Streaming summary of a sample set (Welford's algorithm for the variance).
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-bucket histogram over [0, buckets); values beyond the last bucket are
// clamped into it.  Used for contention profiles (accesses-per-cell counts).
class Histogram {
 public:
  explicit Histogram(std::size_t buckets) : counts_(buckets, 0) {}

  // Inline: called once per (cell, round) pair on the simulator hot path.
  void add(std::size_t value, std::uint64_t weight = 1) {
    WFSORT_DCHECK(!counts_.empty());
    const std::size_t bucket = value < counts_.size() ? value : counts_.size() - 1;
    counts_[bucket] += weight;
    total_ += weight;
  }

  std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }
  // Largest bucket index with a nonzero count (0 if empty).
  std::size_t max_nonzero() const;
  // Smallest value v such that at least `fraction` of the mass is <= v.
  std::size_t quantile(double fraction) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Least-squares fit of y = c * x^alpha on log-log axes; returns alpha.
// Used to check e.g. that measured contention grows like sqrt(P)
// (alpha ~ 0.5) rather than linearly (alpha ~ 1).
double fit_power_law(const std::vector<double>& x, const std::vector<double>& y);

// Least-squares fit of y = a + b * log2(x); returns b (the per-doubling
// increment).  Used to check O(log N) round counts.
double fit_log(const std::vector<double>& x, const std::vector<double>& y);

// Pearson correlation of (x, y) after the transform applied by the fits
// above is not needed by callers; we expose plain R^2 of a linear fit for
// reporting goodness-of-fit on the transformed axes.
double linear_r2(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace wfsort
