#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace wfsort {

void Summary::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::size_t Histogram::max_nonzero() const {
  for (std::size_t i = counts_.size(); i > 0; --i) {
    if (counts_[i - 1] != 0) return i - 1;
  }
  return 0;
}

std::size_t Histogram::quantile(double fraction) const {
  WFSORT_CHECK(fraction >= 0.0 && fraction <= 1.0);
  if (total_ == 0) return 0;
  const double target = fraction * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += static_cast<double>(counts_[i]);
    if (cumulative >= target) return i;
  }
  return counts_.size() - 1;
}

namespace {

// Ordinary least squares for y = a + b*x; returns {a, b}.
std::pair<double, double> ols(const std::vector<double>& x, const std::vector<double>& y) {
  WFSORT_CHECK(x.size() == y.size());
  WFSORT_CHECK(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  WFSORT_CHECK(std::abs(denom) > 1e-12);
  const double b = (n * sxy - sx * sy) / denom;
  const double a = (sy - b * sx) / n;
  return {a, b};
}

}  // namespace

double fit_power_law(const std::vector<double>& x, const std::vector<double>& y) {
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    WFSORT_CHECK(x[i] > 0 && y[i] > 0);
    lx[i] = std::log2(x[i]);
    ly[i] = std::log2(y[i]);
  }
  return ols(lx, ly).second;
}

double fit_log(const std::vector<double>& x, const std::vector<double>& y) {
  std::vector<double> lx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    WFSORT_CHECK(x[i] > 0);
    lx[i] = std::log2(x[i]);
  }
  return ols(lx, y).second;
}

double linear_r2(const std::vector<double>& x, const std::vector<double>& y) {
  auto [a, b] = ols(x, y);
  double ss_res = 0, ss_tot = 0, mean_y = 0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = a + b * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  if (ss_tot < 1e-12) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace wfsort
