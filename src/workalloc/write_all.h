// Canned write-all solvers on the simulated PRAM.
//
// The write-all problem (Kanellakis & Shvartsman): fill every element of an
// N-cell array with 1 using P fault-prone processors.  It is the canonical
// benchmark for wait-free work allocation, and experiments E1/E5 measure the
// paper's two allocation schemes through these helpers.
#pragma once

#include <cstdint>

#include "pram/machine.h"

namespace wfsort::sim {

struct WriteAllOutcome {
  pram::RunResult run;
  pram::Region output;     // the array B
  bool complete = false;   // true iff every cell of B holds 1
};

// Deterministic WAT allocation (Figures 1-2).
WriteAllOutcome write_all_wat(pram::Machine& m, std::uint64_t jobs, std::uint32_t procs,
                              pram::Scheduler& sched);

// Randomized LC-WAT allocation (Figure 8).
WriteAllOutcome write_all_lcwat(pram::Machine& m, std::uint64_t jobs, std::uint32_t procs,
                                pram::Scheduler& sched);

}  // namespace wfsort::sim
