#include "workalloc/wat_program.h"

#include "common/check.h"

namespace wfsort::sim {

PramWat make_pram_wat(pram::Memory& mem, std::string_view name, std::uint64_t jobs) {
  WFSORT_CHECK(jobs >= 1);
  PramWat wat;
  wat.jobs = jobs;
  wat.tree = HeapTree(next_pow2(jobs));
  wat.region = mem.alloc(name, wat.tree.nodes(), pram::kEmpty);
  for (std::uint64_t k = jobs; k < wat.tree.leaves; ++k) {
    mem.poke(wat.node_addr(wat.tree.leaf(k)), pram::kDone);
  }
  if (jobs < wat.tree.leaves) {
    for (std::uint64_t n = wat.tree.leaves - 1; n-- > 0;) {
      if (mem.peek(wat.node_addr(wat.tree.left(n))) == pram::kDone &&
          mem.peek(wat.node_addr(wat.tree.right(n))) == pram::kDone) {
        mem.poke(wat.node_addr(n), pram::kDone);
      }
    }
  }
  return wat;
}

pram::SubTask<pram::Word> next_element(pram::Ctx& ctx, const PramWat& wat, pram::Word node) {
  WFSORT_CHECK(node >= 0 && static_cast<std::uint64_t>(node) < wat.tree.nodes());
  std::uint64_t i = static_cast<std::uint64_t>(node);
  co_await ctx.write(wat.node_addr(i), pram::kDone);
  if (wat.tree.is_root(i)) co_return pram::kDone;

  // Ascent (Figure 1 lines 4-12).
  std::uint64_t s = wat.tree.sibling(i);
  while (true) {
    const pram::Word sv = co_await ctx.read(wat.node_addr(s));
    if (sv != pram::kDone) break;
    const std::uint64_t p = wat.tree.parent(i);
    co_await ctx.write(wat.node_addr(p), pram::kDone);
    i = p;
    if (wat.tree.is_root(i)) co_return pram::kDone;
    s = wat.tree.sibling(i);
  }

  // Descent (Figure 1 lines 14-20).
  i = s;
  while (!wat.tree.is_leaf(i)) {
    const pram::Word lv = co_await ctx.read(wat.node_addr(wat.tree.left(i)));
    if (lv != pram::kDone) {
      i = wat.tree.left(i);
      continue;
    }
    const pram::Word rv = co_await ctx.read(wat.node_addr(wat.tree.right(i)));
    if (rv != pram::kDone) {
      i = wat.tree.right(i);
      continue;
    }
    // Stale inner node: both children DONE but the node not yet marked.
    co_return static_cast<pram::Word>(i);
  }
  co_return static_cast<pram::Word>(i);
}

pram::SubTask<void> wat_skeleton(pram::Ctx& ctx, const PramWat& wat, std::uint32_t nprocs,
                                 const PramJobFn& job) {
  WFSORT_CHECK(nprocs > 0);
  pram::Word i =
      static_cast<pram::Word>(wat.tree.leaf(wat.jobs * (ctx.pid() % nprocs) / nprocs));
  while (true) {
    const std::uint64_t u = static_cast<std::uint64_t>(i);
    if (wat.tree.is_leaf(u)) {
      const std::uint64_t j = wat.tree.leaf_rank(u);
      if (j < wat.jobs) co_await job(ctx, j);
    }
    i = co_await next_element(ctx, wat, i);
    if (i == pram::kDone) break;
  }
}

pram::Task wat_worker(pram::Ctx& ctx, const PramWat& wat, std::uint32_t nprocs, PramJobFn job) {
  co_await wat_skeleton(ctx, wat, nprocs, job);
}

}  // namespace wfsort::sim
