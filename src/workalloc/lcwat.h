// Low-Contention Work Assignment Tree (LC-WAT) — native form.
//
// Figure 8 of the paper.  Like a WAT, jobs live at the leaves of a binary
// tree, but processors *probe uniformly random nodes* instead of walking
// paths, so no node — in particular not the root — becomes a polling
// hot-spot.  Completion is announced by the processor that finds both root
// children DONE: it writes ALLDONE into the root, and ALLDONE then spreads
// *down* the tree, each quitting processor pushing it one level further.
// Lemma 3.1: with P processors over P jobs, the tree completes in O(log P)
// rounds with per-variable contention O(log P / log log P), w.h.p.
//
// Native fast-path refinements (docs/native_engine.md), all bounded and all
// preserving the random-probe fallback, so the paper's probabilistic
// termination argument is unchanged:
//
//   * Line harvesting: the state bytes are 1 B each, so the cache line a
//     probe just paid for holds up to 64 neighbouring states.  A probe that
//     lands on an EMPTY leaf claims every other EMPTY leaf in the same line
//     too — one memory transaction amortized over up to 64 job claims.
//   * Eager combining: after finishing a leaf, the processor walks up while
//     both children are complete, setting DONE as it goes (bounded by the
//     tree depth).  Interior nodes no longer wait for a random probe to
//     happen to land on them after their children completed — the
//     coupon-collector tail of pure probing is gone.
//   * Full ALLDONE down-wave: the processor whose write turns the root
//     ALLDONE immediately pushes the announcement down the ENTIRE tree (one
//     bounded sweep of plain stores).  Every other processor's next probe —
//     wherever it lands — observes ALLDONE and quits, instead of randomly
//     hunting for the handful of announced nodes near the root.  The
//     paper's one-level-per-quitter wave is kept as the crash-tolerant
//     fallback: if the sweeper dies mid-sweep, quitting processors still
//     spread the mark exactly as in Figure 8.
//
// Unlike the deterministic WAT this structure's termination bound is
// probabilistic (expected / w.h.p.), which is exactly the trade the paper
// makes for low contention.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/arena.h"
#include "common/bits.h"
#include "common/rng.h"

namespace wfsort {

class LcWat {
 public:
  enum class State : std::uint8_t { kEmpty = 0, kDone = 1, kAllDone = 2 };
  enum class Outcome { kWorking, kQuit };

  // One state byte per node: 64 of them share a cache line, which is what
  // line harvesting exploits.
  static constexpr std::uint64_t kLineStates = 64;

  explicit LcWat(std::uint64_t jobs)
      : tree_(next_pow2(jobs)), jobs_(jobs), state_(tree_.nodes()) {
    reset();
  }

  // Pooled form: the state bytes borrow RunArena storage.
  LcWat(std::uint64_t jobs, RunArena& arena)
      : tree_(next_pow2(jobs)), jobs_(jobs), state_(tree_.nodes(), arena) {
    reset();
  }

  std::uint64_t jobs() const { return jobs_; }
  std::uint64_t nodes() const { return tree_.nodes(); }

  // One iteration of the probe loop.  `func(job)` is invoked when the probe
  // lands on an unfinished job leaf; it must tolerate concurrent duplicate
  // execution.  Returns kQuit when this processor has observed the ALLDONE
  // announcement (and propagated it one level down).
  template <typename Func>
  Outcome step(Rng& rng, Func&& func) {
    const std::uint64_t i = rng.below(tree_.nodes());
    const State v = get(i);
    if (v == State::kEmpty) {
      bool announced = false;
      if (tree_.is_leaf(i)) {
        announced = complete_leaf(i, func);
        announced = harvest_line(i, func) || announced;
        announced = combine_up(i) || announced;
      } else if (get(tree_.left(i)) != State::kEmpty &&
                 get(tree_.right(i)) != State::kEmpty) {
        if (tree_.is_root(i)) {
          set(i, State::kAllDone);
          announce_all_done();
          announced = true;
        } else {
          set(i, State::kDone);
          announced = combine_up(i);
        }
      }
      // A processor that announced completion itself quits right away;
      // everyone else quits on their next probe, which — thanks to the full
      // down-wave — lands on an ALLDONE node wherever it falls.
      return announced ? Outcome::kQuit : Outcome::kWorking;
    }
    if (v == State::kAllDone) {
      if (!tree_.is_leaf(i)) {
        // Figure-8 fallback wave: push one level down, then quit.
        set(tree_.left(i), State::kAllDone);
        set(tree_.right(i), State::kAllDone);
      }
      return Outcome::kQuit;
    }
    return Outcome::kWorking;
  }

  // Probe until this processor quits; returns the number of probes taken.
  template <typename Func>
  std::uint64_t solve(Rng& rng, Func&& func) {
    std::uint64_t probes = 0;
    while (step(rng, func) == Outcome::kWorking) ++probes;
    return probes + 1;
  }

  bool all_done() const {
    const State v = get(tree_.root());
    return v == State::kAllDone;
  }

  State node_state(std::uint64_t i) const { return get(i); }

  void reset() {
    for (std::uint64_t i = 0; i < state_.size(); ++i) {
      state_[i].store(0, std::memory_order_relaxed);
    }
    for (std::uint64_t k = jobs_; k < tree_.leaves; ++k) {
      state_[tree_.leaf(k)].store(static_cast<std::uint8_t>(State::kDone),
                                  std::memory_order_relaxed);
    }
    if (jobs_ < tree_.leaves) {
      for (std::uint64_t n = tree_.leaves - 1; n-- > 0;) {
        if (get(tree_.left(n)) == State::kDone && get(tree_.right(n)) == State::kDone) {
          state_[n].store(static_cast<std::uint8_t>(State::kDone), std::memory_order_relaxed);
        }
      }
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

 private:
  State get(std::uint64_t i) const {
    return static_cast<State>(state_[i].load(std::memory_order_acquire));
  }
  void set(std::uint64_t i, State s) {
    state_[i].store(static_cast<std::uint8_t>(s), std::memory_order_release);
  }

  // Execute and mark leaf `i`; returns true if this was the announcement
  // (degenerate 1-job tree whose leaf is the root).
  template <typename Func>
  bool complete_leaf(std::uint64_t i, Func&& func) {
    const std::uint64_t job = tree_.leaf_rank(i);
    if (job < jobs_) func(job);
    if (tree_.is_root(i)) {
      set(i, State::kAllDone);
      announce_all_done();
      return true;
    }
    set(i, State::kDone);
    return false;
  }

  // Claim every other EMPTY leaf whose state byte shares probe `i`'s cache
  // line — the line is already in this processor's cache, so the extra
  // claims are free of memory traffic.  Bounded by the line size.  The line
  // is walked in BIT-REVERSED order: callers (the sort's stage E) rely on
  // job execution order being scattered — adjacent jobs cover adjacent data,
  // and executing a line's 64 jobs in ascending order would re-create
  // exactly the sorted-order insertion pattern random probing exists to
  // avoid.
  template <typename Func>
  bool harvest_line(std::uint64_t i, Func&& func) {
    bool announced = false;
    const std::uint64_t lo = i & ~(kLineStates - 1);
    const std::uint64_t len = std::min(kLineStates, tree_.nodes() - lo);
    const std::uint32_t bits = log2_ceil(next_pow2(len));
    for (std::uint64_t k = 0; k < (std::uint64_t{1} << bits); ++k) {
      const std::uint64_t off = bit_reverse(k, bits);
      if (off >= len) continue;
      const std::uint64_t s = lo + off;
      if (s == i || !tree_.is_leaf(s)) continue;
      if (get(s) != State::kEmpty) continue;
      announced = complete_leaf(s, func) || announced;
    }
    return announced;
  }

  // Eager bottom-up combining from `i`: while the sibling is also complete,
  // mark the parent DONE and continue.  Bounded by the tree depth; racing
  // processors write the same values, so duplicates are harmless.  Returns
  // true if the walk reached and announced the root.
  bool combine_up(std::uint64_t i) {
    while (!tree_.is_root(i)) {
      const std::uint64_t p = tree_.parent(i);
      if (get(p) != State::kEmpty) return false;
      if (get(tree_.left(p)) == State::kEmpty ||
          get(tree_.right(p)) == State::kEmpty) {
        return false;
      }
      if (tree_.is_root(p)) {
        set(p, State::kAllDone);
        announce_all_done();
        return true;
      }
      set(p, State::kDone);
      i = p;
    }
    return false;
  }

  // The full down-wave: one bounded sweep of plain stores marking every
  // node ALLDONE.  Run by the processor that turned the root ALLDONE;
  // idempotent if two processors race the root transition.
  void announce_all_done() {
    for (std::uint64_t i = 0; i < state_.size(); ++i) {
      state_[i].store(static_cast<std::uint8_t>(State::kAllDone),
                      std::memory_order_release);
    }
  }

  HeapTree tree_;
  std::uint64_t jobs_;
  ArenaArray<std::atomic<std::uint8_t>> state_;
};

}  // namespace wfsort
