// Low-Contention Work Assignment Tree (LC-WAT) — native form.
//
// Figure 8 of the paper.  Like a WAT, jobs live at the leaves of a binary
// tree, but processors *probe uniformly random nodes* instead of walking
// paths, so no node — in particular not the root — becomes a polling
// hot-spot.  Completion is announced by the processor that finds both root
// children DONE: it writes ALLDONE into the root, and ALLDONE then spreads
// *down* the tree, each quitting processor pushing it one level further.
// Lemma 3.1: with P processors over P jobs, the tree completes in O(log P)
// rounds with per-variable contention O(log P / log log P), w.h.p.
//
// Unlike the deterministic WAT this structure's termination bound is
// probabilistic (expected / w.h.p.), which is exactly the trade the paper
// makes for low contention.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/rng.h"

namespace wfsort {

class LcWat {
 public:
  enum class State : std::uint8_t { kEmpty = 0, kDone = 1, kAllDone = 2 };
  enum class Outcome { kWorking, kQuit };

  explicit LcWat(std::uint64_t jobs)
      : tree_(next_pow2(jobs)), jobs_(jobs), state_(tree_.nodes()) {
    reset();
  }

  std::uint64_t jobs() const { return jobs_; }
  std::uint64_t nodes() const { return tree_.nodes(); }

  // One iteration of the probe loop.  `func(job)` is invoked when the probe
  // lands on an unfinished job leaf; it must tolerate concurrent duplicate
  // execution.  Returns kQuit when this processor has observed the ALLDONE
  // announcement (and propagated it one level down).
  template <typename Func>
  Outcome step(Rng& rng, Func&& func) {
    const std::uint64_t i = rng.below(tree_.nodes());
    const State v = get(i);
    if (v == State::kEmpty) {
      if (tree_.is_leaf(i)) {
        const std::uint64_t job = tree_.leaf_rank(i);
        if (job < jobs_) func(job);
        // Degenerate 1-job tree: the leaf is the root, so completing it is
        // also the completion announcement.
        set(i, tree_.is_root(i) ? State::kAllDone : State::kDone);
      } else if (get(tree_.left(i)) == State::kDone && get(tree_.right(i)) == State::kDone) {
        set(i, tree_.is_root(i) ? State::kAllDone : State::kDone);
      }
      return Outcome::kWorking;
    }
    if (v == State::kAllDone) {
      if (!tree_.is_leaf(i)) {
        set(tree_.left(i), State::kAllDone);
        set(tree_.right(i), State::kAllDone);
        return Outcome::kQuit;
      }
      if (tree_.is_root(i)) return Outcome::kQuit;  // 1-job tree
    }
    return Outcome::kWorking;
  }

  // Probe until this processor quits; returns the number of probes taken.
  template <typename Func>
  std::uint64_t solve(Rng& rng, Func&& func) {
    std::uint64_t probes = 0;
    while (step(rng, func) == Outcome::kWorking) ++probes;
    return probes + 1;
  }

  bool all_done() const {
    const State v = get(tree_.root());
    return v == State::kAllDone;
  }

  State node_state(std::uint64_t i) const { return get(i); }

  void reset() {
    for (auto& s : state_) s.store(0, std::memory_order_relaxed);
    for (std::uint64_t k = jobs_; k < tree_.leaves; ++k) {
      state_[tree_.leaf(k)].store(static_cast<std::uint8_t>(State::kDone),
                                  std::memory_order_relaxed);
    }
    if (jobs_ < tree_.leaves) {
      for (std::uint64_t n = tree_.leaves - 1; n-- > 0;) {
        if (get(tree_.left(n)) == State::kDone && get(tree_.right(n)) == State::kDone) {
          state_[n].store(static_cast<std::uint8_t>(State::kDone), std::memory_order_relaxed);
        }
      }
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

 private:
  State get(std::uint64_t i) const {
    return static_cast<State>(state_[i].load(std::memory_order_acquire));
  }
  void set(std::uint64_t i, State s) {
    state_[i].store(static_cast<std::uint8_t>(s), std::memory_order_release);
  }

  HeapTree tree_;
  std::uint64_t jobs_;
  std::vector<std::atomic<std::uint8_t>> state_;
};

}  // namespace wfsort
