// WAT work allocation as PRAM programs (paper Figures 1 and 2).
//
// These run on the simulated CRCW PRAM so that round counts and contention
// match the paper's model exactly.  The WAT occupies a region of 2L-1 words
// (L = jobs rounded up to a power of two); kEmpty marks incomplete nodes and
// kDone complete ones.  Padding leaves — and inner nodes whose entire
// subtree is padding — are pre-marked kDone at creation.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/bits.h"
#include "pram/machine.h"
#include "pram/subtask.h"

namespace wfsort::sim {

struct PramWat {
  pram::Region region;     // 2 * tree.leaves - 1 words
  std::uint64_t jobs = 0;  // real jobs (<= tree.leaves)
  HeapTree tree{1};

  pram::Addr node_addr(std::uint64_t node) const { return region.base + node; }
};

// Allocate and initialize a WAT over `jobs` leaves.
PramWat make_pram_wat(pram::Memory& mem, std::string_view name, std::uint64_t jobs);

// Figure 1: mark `node` DONE, climb / descend, return the next incomplete
// node index, or pram::kDone once the root is marked.
//
// SubTask subroutines take their layout/config aggregates by const reference
// rather than by value: the caller co_awaits the SubTask immediately, and
// C++ keeps the full co_await expression's operands (including temporaries)
// alive in the caller's frame across suspension, so the referent always
// outlives the subroutine.  This keeps the hot coroutine frames small and
// free of std::string copies.  Root Task programs (wat_worker et al.) still
// copy their parameters, since a root outlives its creating expression.
pram::SubTask<pram::Word> next_element(pram::Ctx& ctx, const PramWat& wat, pram::Word node);

// A leaf job: coroutine invoked with the job's index in [0, jobs).  Jobs may
// be executed concurrently by several processors and must be idempotent.
using PramJobFn = std::function<pram::SubTask<void>(pram::Ctx&, std::uint64_t)>;

// Figure 2: the skeleton wait-free algorithm.  Processor `pid` of `nprocs`
// starts at leaf floor(jobs * pid / nprocs) and works leaves handed out by
// next_element until the tree completes.  The SubTask form composes into
// larger programs (the sorting phases); wat_worker is the standalone root.
//
// Root Task workers also take their layout aggregate by const reference —
// the referent must outlive the run.  Spawn factories satisfy this by
// capturing one std::shared_ptr<const PramWat> per crew (the machine keeps
// each factory alive for its processor's lifetime), so a thousand
// processors share a single cache-resident copy of the tree geometry
// instead of dragging a thousand scattered copies through every round.
pram::SubTask<void> wat_skeleton(pram::Ctx& ctx, const PramWat& wat, std::uint32_t nprocs,
                                 const PramJobFn& job);
pram::Task wat_worker(pram::Ctx& ctx, const PramWat& wat, std::uint32_t nprocs, PramJobFn job);

}  // namespace wfsort::sim
