#include "workalloc/wat.h"

#include "common/check.h"

namespace wfsort {

Wat::Wat(std::uint64_t jobs)
    : tree_(next_pow2(jobs)), jobs_(jobs), done_(tree_.nodes()) {
  WFSORT_CHECK(jobs >= 1);
  reset();
}

Wat::Wat(std::uint64_t jobs, RunArena& arena)
    : tree_(next_pow2(jobs)), jobs_(jobs), done_(tree_.nodes(), arena) {
  WFSORT_CHECK(jobs >= 1);
  reset();
}

void Wat::reset() {
  for (std::uint64_t i = 0; i < done_.size(); ++i) {
    done_[i].store(0, std::memory_order_relaxed);
  }
  // Padding leaves (beyond the real jobs) start life complete, and so do any
  // inner nodes whose whole subtree is padding, so next_element never hands
  // them out.
  for (std::uint64_t k = jobs_; k < tree_.leaves; ++k) {
    done_[tree_.leaf(k)].store(1, std::memory_order_relaxed);
  }
  if (jobs_ < tree_.leaves) {
    for (std::uint64_t n = tree_.leaves - 1; n-- > 0;) {
      if (done_[tree_.left(n)].load(std::memory_order_relaxed) != 0 &&
          done_[tree_.right(n)].load(std::memory_order_relaxed) != 0) {
        done_[n].store(1, std::memory_order_relaxed);
      }
    }
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

std::int64_t Wat::initial_leaf(std::uint32_t pid, std::uint32_t nprocs) const {
  WFSORT_CHECK(nprocs > 0);
  const std::uint64_t job = jobs_ * (pid % nprocs) / nprocs;
  return leaf_of_job(job);
}

std::int64_t Wat::leaf_of_job(std::uint64_t j) const {
  WFSORT_CHECK(j < jobs_);
  return static_cast<std::int64_t>(tree_.leaf(j));
}

bool Wat::is_leaf(std::int64_t node) const {
  return tree_.is_leaf(static_cast<std::uint64_t>(node));
}

std::uint64_t Wat::job_of(std::int64_t node) const {
  WFSORT_CHECK(is_leaf(node));
  return tree_.leaf_rank(static_cast<std::uint64_t>(node));
}

bool Wat::is_job_leaf(std::int64_t node) const {
  return is_leaf(node) && job_of(node) < jobs_;
}

bool Wat::done(std::int64_t node) const { return marked(static_cast<std::uint64_t>(node)); }

bool Wat::all_done() const { return marked(tree_.root()); }

std::int64_t Wat::next_element(std::int64_t node) {
  WFSORT_CHECK(node >= 0 && static_cast<std::uint64_t>(node) < tree_.nodes());
  std::uint64_t i = static_cast<std::uint64_t>(node);
  mark(i);
  if (tree_.is_root(i)) return kAllJobsDone;

  // Ascent: while the sibling subtree is complete, the parent's subtree is
  // complete too (this node's subtree is known complete), so mark the parent
  // and keep climbing.
  std::uint64_t s = tree_.sibling(i);
  while (marked(s)) {
    const std::uint64_t p = tree_.parent(i);
    mark(p);
    i = p;
    if (tree_.is_root(i)) return kAllJobsDone;
    s = tree_.sibling(i);
  }

  // Descent into the unfinished sibling subtree.
  i = s;
  while (!tree_.is_leaf(i)) {
    if (!marked(tree_.left(i))) {
      i = tree_.left(i);
    } else if (!marked(tree_.right(i))) {
      i = tree_.right(i);
    } else {
      // Stale inner node: both children completed but nobody marked it yet.
      // Following the paper, return it; the caller feeds it back into
      // next_element, which marks it and continues the ascent.
      return static_cast<std::int64_t>(i);
    }
  }
  return static_cast<std::int64_t>(i);
}

}  // namespace wfsort
