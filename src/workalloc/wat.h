// Work Assignment Tree (WAT) — native shared-memory form.
//
// A WAT solves wait-free work allocation (the write-all problem of
// Kanellakis & Shvartsman): N jobs sit at the leaves of a binary tree whose
// inner nodes record completed subtrees.  next_element() follows Figure 1 of
// the paper (Algorithm X of Buss, Kanellakis, Ragde & Shvartsman): it marks
// the caller's node DONE, climbs while the sibling subtree is complete —
// marking parents on the way — and otherwise descends the sibling to an
// unfinished leaf.  Each call is wait-free and costs O(log N) steps
// (Lemma 2.1).
//
// Guarantees (Corollary 2.2): a call returns a node that no earlier-finished
// call has returned, or kAllJobsDone once every leaf has been handed out.
// Two *concurrent* calls may return the same leaf, so jobs must be
// idempotent / concurrently re-executable — true of every job in the
// sorting algorithm.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/arena.h"
#include "common/bits.h"

namespace wfsort {

class Wat {
 public:
  // Sentinel returned when the whole tree is complete.
  static constexpr std::int64_t kAllJobsDone = -1;

  explicit Wat(std::uint64_t jobs);
  // Pooled form: the done-bit array borrows RunArena storage.
  Wat(std::uint64_t jobs, RunArena& arena);

  std::uint64_t jobs() const { return jobs_; }
  std::uint64_t nodes() const { return tree_.nodes(); }
  const HeapTree& shape() const { return tree_; }

  // Figure 2's initial assignment: processor `pid` of `nprocs` starts at the
  // leaf holding job floor(jobs * pid / nprocs).
  std::int64_t initial_leaf(std::uint32_t pid, std::uint32_t nprocs) const;

  // Tree-node index of job j's leaf / job index of a leaf node.
  std::int64_t leaf_of_job(std::uint64_t j) const;
  bool is_leaf(std::int64_t node) const;
  std::uint64_t job_of(std::int64_t node) const;

  // True if `node` is a leaf holding a real job (not power-of-two padding).
  bool is_job_leaf(std::int64_t node) const;

  // Mark `node` complete and locate the next incomplete node (usually a
  // leaf; occasionally a stale inner node, which the caller simply feeds
  // back in).  Returns kAllJobsDone when the root gets marked.
  std::int64_t next_element(std::int64_t node);

  bool done(std::int64_t node) const;
  bool all_done() const;

  // Forget all progress (single-threaded use only, between runs).
  void reset();

 private:
  HeapTree tree_;
  std::uint64_t jobs_;
  ArenaArray<std::atomic<std::uint8_t>> done_;

  void mark(std::uint64_t node) { done_[node].store(1, std::memory_order_release); }
  bool marked(std::uint64_t node) const {
    return done_[node].load(std::memory_order_acquire) != 0;
  }
};

}  // namespace wfsort
