// LC-WAT low-contention work allocation as a PRAM program (Figure 8).
//
// Processors probe uniformly random tree nodes.  A probe on an unfinished
// leaf performs the leaf's job; a probe on an inner node whose children are
// both DONE marks it (the root gets ALLDONE instead); a probe on an ALLDONE
// inner node pushes ALLDONE to both children and the processor quits.
// Lemma 3.1: under synchronous execution, w.h.p. the tree over P jobs
// completes in O(log P) rounds with contention O(log P / log log P).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bits.h"
#include "pram/machine.h"
#include "pram/subtask.h"
#include "workalloc/wat_program.h"  // PramJobFn

namespace wfsort::sim {

struct PramLcWat {
  pram::Region region;
  std::uint64_t jobs = 0;
  HeapTree tree{1};

  pram::Addr node_addr(std::uint64_t node) const { return region.base + node; }
};

PramLcWat make_pram_lcwat(pram::Memory& mem, std::string_view name, std::uint64_t jobs);

// One worker of Figure 8's low_contention_work.  Returns (completes) once
// this processor has seen the ALLDONE announcement.  The SubTask form
// composes into larger programs (the LC sort's insertion stage).
pram::SubTask<void> lcwat_skeleton(pram::Ctx& ctx, const PramLcWat& wat, const PramJobFn& job);
// Takes the tree geometry by const reference (see wat_worker's note in
// wat_program.h for the lifetime contract).
pram::Task lcwat_worker(pram::Ctx& ctx, const PramLcWat& wat, PramJobFn job);

}  // namespace wfsort::sim
