#include "workalloc/write_all.h"

#include <memory>

#include "workalloc/lcwat_program.h"
#include "workalloc/wat_program.h"

namespace wfsort::sim {

namespace {

pram::SubTask<void> write_one(pram::Ctx& ctx, pram::Addr base, std::uint64_t j) {
  co_await ctx.write(base + j, 1);
}

bool region_all_ones(const pram::Machine& m, const pram::Region& r) {
  for (pram::Addr i = 0; i < r.size; ++i) {
    if (m.mem().peek(r.base + i) != 1) return false;
  }
  return true;
}

}  // namespace

WriteAllOutcome write_all_wat(pram::Machine& m, std::uint64_t jobs, std::uint32_t procs,
                              pram::Scheduler& sched) {
  WriteAllOutcome out;
  out.output = m.mem().alloc("write-all B", jobs, 0);
  // The crew shares one copy of the tree geometry (wat_worker's lifetime
  // note); the factories' shared_ptrs keep it alive.
  auto wat = std::make_shared<const PramWat>(make_pram_wat(m.mem(), "WAT nodes", jobs));
  const pram::Addr base = out.output.base;
  for (std::uint32_t p = 0; p < procs; ++p) {
    m.spawn([wat, procs, base](pram::Ctx& ctx) {
      return wat_worker(ctx, *wat, procs, [base](pram::Ctx& c, std::uint64_t j) {
        return write_one(c, base, j);
      });
    });
  }
  out.run = m.run(sched);
  out.complete = region_all_ones(m, out.output);
  return out;
}

WriteAllOutcome write_all_lcwat(pram::Machine& m, std::uint64_t jobs, std::uint32_t procs,
                                pram::Scheduler& sched) {
  WriteAllOutcome out;
  out.output = m.mem().alloc("write-all B", jobs, 0);
  auto wat = std::make_shared<const PramLcWat>(make_pram_lcwat(m.mem(), "LC-WAT nodes", jobs));
  const pram::Addr base = out.output.base;
  for (std::uint32_t p = 0; p < procs; ++p) {
    m.spawn([wat, base](pram::Ctx& ctx) {
      return lcwat_worker(ctx, *wat, [base](pram::Ctx& c, std::uint64_t j) {
        return write_one(c, base, j);
      });
    });
  }
  out.run = m.run(sched);
  out.complete = region_all_ones(m, out.output);
  return out;
}

}  // namespace wfsort::sim
