#include "workalloc/lcwat_program.h"

#include "common/check.h"

namespace wfsort::sim {

PramLcWat make_pram_lcwat(pram::Memory& mem, std::string_view name, std::uint64_t jobs) {
  WFSORT_CHECK(jobs >= 1);
  PramLcWat wat;
  wat.jobs = jobs;
  wat.tree = HeapTree(next_pow2(jobs));
  wat.region = mem.alloc(name, wat.tree.nodes(), pram::kEmpty);
  for (std::uint64_t k = jobs; k < wat.tree.leaves; ++k) {
    mem.poke(wat.node_addr(wat.tree.leaf(k)), pram::kDone);
  }
  if (jobs < wat.tree.leaves) {
    for (std::uint64_t n = wat.tree.leaves - 1; n-- > 0;) {
      if (mem.peek(wat.node_addr(wat.tree.left(n))) == pram::kDone &&
          mem.peek(wat.node_addr(wat.tree.right(n))) == pram::kDone) {
        mem.poke(wat.node_addr(n), pram::kDone);
      }
    }
  }
  return wat;
}

pram::SubTask<void> lcwat_skeleton(pram::Ctx& ctx, const PramLcWat& wat, const PramJobFn& job) {
  while (true) {
    const std::uint64_t i = ctx.rng().below(wat.tree.nodes());
    const pram::Word v = co_await ctx.read(wat.node_addr(i));

    if (v == pram::kEmpty) {
      if (wat.tree.is_leaf(i)) {
        const std::uint64_t j = wat.tree.leaf_rank(i);
        if (j < wat.jobs) co_await job(ctx, j);
        // A 1-job tree's leaf is also the root: completing it doubles as the
        // completion announcement.
        co_await ctx.write(wat.node_addr(i),
                           wat.tree.is_root(i) ? pram::kAllDone : pram::kDone);
      } else {
        const pram::Word l = co_await ctx.read(wat.node_addr(wat.tree.left(i)));
        if (l != pram::kDone) continue;
        const pram::Word r = co_await ctx.read(wat.node_addr(wat.tree.right(i)));
        if (r != pram::kDone) continue;
        co_await ctx.write(wat.node_addr(i),
                           wat.tree.is_root(i) ? pram::kAllDone : pram::kDone);
      }
      continue;
    }

    if (v == pram::kAllDone) {
      if (!wat.tree.is_leaf(i)) {
        co_await ctx.write(wat.node_addr(wat.tree.left(i)), pram::kAllDone);
        co_await ctx.write(wat.node_addr(wat.tree.right(i)), pram::kAllDone);
        co_return;
      }
      if (wat.tree.is_root(i)) co_return;  // 1-job tree
    }
  }
}

pram::Task lcwat_worker(pram::Ctx& ctx, const PramLcWat& wat, PramJobFn job) {
  co_await lcwat_skeleton(ctx, wat, job);
}

}  // namespace wfsort::sim
