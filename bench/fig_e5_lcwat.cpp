// E5 — Lemma 3.1: the LC-WAT solves write-all in O(log P) rounds with
// contention O(log P / log log P) w.h.p. under synchronous execution.
//
// Side-by-side with the deterministic WAT (E1's structure): the LC-WAT
// trades a constant-factor round increase for a polylog contention bound,
// versus the WAT's structural hot-spots.
#include <cmath>
#include <cstdio>

#include "exp/table.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "workalloc/write_all.h"

int main() {
  std::printf("E5: LC-WAT write-all vs deterministic WAT, P = N\n");
  std::printf("Claim (Lemma 3.1): O(log P) rounds, O(log P / log log P) contention.\n");

  wfsort::exp::Table table("E5  rounds and contention vs P",
                           {"P=N", "WAT rounds", "LC rounds", "WAT contention",
                            "LC contention", "LC bound c*logP/loglogP", "complete"});
  wfsort::exp::Series lc_contention;
  wfsort::exp::Series lc_rounds;

  for (std::uint64_t n = 64; n <= (1u << 13); n *= 4) {
    pram::Machine m_wat;
    pram::SynchronousScheduler s1;
    auto wat_out = wfsort::sim::write_all_wat(m_wat, n, static_cast<std::uint32_t>(n), s1);

    pram::Machine m_lc;
    pram::SynchronousScheduler s2;
    auto lc_out = wfsort::sim::write_all_lcwat(m_lc, n, static_cast<std::uint32_t>(n), s2);

    const double logp = std::log2(static_cast<double>(n));
    const double bound = 3.0 * logp / std::log2(std::max(2.0, logp));
    table.add_row({n, wat_out.run.rounds, lc_out.run.rounds,
                   static_cast<std::uint64_t>(m_wat.metrics().max_cell_contention()),
                   static_cast<std::uint64_t>(m_lc.metrics().max_cell_contention()), bound,
                   std::string(wat_out.complete && lc_out.complete ? "yes" : "NO")});
    lc_contention.add(static_cast<double>(n),
                      static_cast<double>(m_lc.metrics().max_cell_contention()));
    lc_rounds.add(static_cast<double>(n), static_cast<double>(lc_out.run.rounds));
  }
  table.print();

  std::printf("LC rounds growth:     %s (log-like)\n",
              wfsort::exp::verdict_exponent(lc_rounds.power_law_exponent(), 0.0, 0.3)
                  .c_str());
  std::printf("LC contention growth: %s (polylog, far below WAT's)\n",
              wfsort::exp::verdict_exponent(lc_contention.power_law_exponent(), 0.0, 0.35)
                  .c_str());
  std::printf("paper-vs-measured: LC-WAT stays within a small constant of log P rounds\n"
              "and its contention hugs the log P / log log P curve.\n");
  return 0;
}
