// E1 — Lemmas 2.1 + 2.3: WAT write-all completes in O(K + log N) rounds.
//
// Workload: write-all over N cells (job cost K = 1 write) with P = N
// processors on the synchronous CRCW PRAM.  The paper predicts rounds that
// grow logarithmically in N; we print the measured rounds, rounds per
// log2(N), per-processor step bound and total work, and fit the growth.
#include <cmath>
#include <cstdio>

#include "common/bits.h"
#include "exp/table.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "workalloc/write_all.h"

int main() {
  std::printf("E1: WAT write-all, P = N, synchronous CRCW PRAM\n");
  std::printf("Claim (Lemma 2.3): completes in O(K + log N) rounds, K = 1.\n");

  wfsort::exp::Table table(
      "E1  rounds vs N",
      {"N=P", "rounds", "rounds/log2N", "max steps/proc", "total ops", "complete"});
  wfsort::exp::Series series;

  for (std::uint64_t n = 16; n <= (1u << 14); n *= 4) {
    pram::Machine m;
    pram::SynchronousScheduler sched;
    auto out = wfsort::sim::write_all_wat(m, n, static_cast<std::uint32_t>(n), sched);
    const double logn = static_cast<double>(wfsort::log2_ceil(n));
    table.add_row({n, out.run.rounds, static_cast<double>(out.run.rounds) / logn,
                   m.metrics().max_proc_ops(), m.metrics().total_ops(),
                   std::string(out.complete ? "yes" : "NO")});
    series.add(static_cast<double>(n), static_cast<double>(out.run.rounds));
  }
  table.print();

  // O(log N) growth means rounds/log2N is flat: power-law exponent ~ 0.
  std::printf("growth: %s\n",
              wfsort::exp::verdict_exponent(series.power_law_exponent(), 0.0, 0.25).c_str());
  std::printf("paper-vs-measured: rounds grow as ~c*log N (c ~ %0.1f), as claimed.\n",
              series.ys().back() / std::log2(series.xs().back()));
  return 0;
}
