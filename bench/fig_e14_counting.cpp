// E14 — counting networks vs a central counter (the Section-1.2 lineage).
//
// The paper's contention measure comes from the counting-network literature;
// this experiment reproduces that literature's core trade on our simulator:
// P processors each draw K values from a shared counter, implemented as
// (a) one fetch-and-add cell, and (b) a Bitonic[w] counting network.
// Under plain CRCW the central counter is "free" (the model hides
// contention) but its hot cell reads Theta(P); under the stall model and
// the QRQW charge — where contention costs time — the network's extra
// depth pays for itself.
#include <cstdio>
#include <memory>

#include "exp/table.h"
#include "lowcontention/counting_network.h"
#include "pram/machine.h"
#include "pram/scheduler.h"

namespace {

pram::Task central_worker(pram::Ctx& ctx, pram::Addr counter, int k) {
  for (int i = 0; i < k; ++i) (void)co_await ctx.faa(counter, 1);
}

pram::Task network_worker(pram::Ctx& ctx,
                          std::shared_ptr<const wfsort::BitonicCountingNetwork> net,
                          pram::Region balancers, pram::Region wires, int k) {
  const std::uint32_t w = net->width();
  for (int i = 0; i < k; ++i) {
    std::uint32_t wire = ctx.pid() % w;
    for (std::uint32_t s = 0; s < net->depth(); ++s) {
      const auto* step = net->step_at(s, wire);
      if (step == nullptr) continue;
      const pram::Word old = co_await ctx.faa(balancers.base + step->balancer, 1);
      wire = ((old & 1) == 0) ? step->up : step->down;
    }
    (void)co_await ctx.faa(wires.base + wire, w);
  }
}

struct RunStats {
  std::uint64_t rounds = 0;
  std::size_t contention = 0;
  std::uint64_t qrqw = 0;
  std::uint64_t stall_rounds = 0;
  bool counted = true;
};

RunStats run_case(std::uint32_t procs, int per_proc, std::uint32_t width) {
  RunStats out;
  for (int model = 0; model < 2; ++model) {
    pram::MachineOptions mo;
    mo.memory_model = model == 0 ? pram::MemoryModel::kCrcw : pram::MemoryModel::kStall;
    pram::Machine m(mo);
    if (width == 0) {
      auto counter = m.mem().alloc("central counter", 1, 0);
      for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn([counter, per_proc](pram::Ctx& ctx) {
          return central_worker(ctx, counter.base, per_proc);
        });
      }
      auto r = m.run_synchronous();
      if (model == 0) {
        out.rounds = r.rounds;
        out.contention = m.metrics().max_cell_contention();
        out.qrqw = m.metrics().qrqw_time();
        out.counted = m.mem().peek(counter.base) ==
                      static_cast<pram::Word>(procs) * per_proc;
      } else {
        out.stall_rounds = r.rounds;
      }
    } else {
      auto net = std::make_shared<const wfsort::BitonicCountingNetwork>(width);
      auto balancers = m.mem().alloc("balancers", net->balancer_count(), 0);
      auto wires = m.mem().alloc("wire counters", width, 0);
      for (std::uint32_t i = 0; i < width; ++i) m.mem().poke(wires.base + i, i);
      for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn([net, balancers, wires, per_proc](pram::Ctx& ctx) {
          return network_worker(ctx, net, balancers, wires, per_proc);
        });
      }
      auto r = m.run_synchronous();
      if (model == 0) {
        out.rounds = r.rounds;
        out.contention = m.metrics().max_cell_contention();
        out.qrqw = m.metrics().qrqw_time();
        // Each wire counter ends at i + w * visits; total visits must equal
        // the total token count.
        pram::Word visits = 0;
        for (std::uint32_t i = 0; i < width; ++i) {
          visits += (m.mem().peek(wires.base + i) - i) / width;
        }
        out.counted = visits == static_cast<pram::Word>(procs) * per_proc;
      } else {
        out.stall_rounds = r.rounds;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("E14: shared counter, central fetch&add vs Bitonic[w] counting network\n");
  std::printf("(P processors x %d increments each; stall model = contention costs time)\n",
              8);

  wfsort::exp::Table table("E14  counter implementations",
                           {"P", "impl", "CRCW rounds", "max contention", "QRQW time",
                            "stall-model rounds", "counted"});
  constexpr int kPerProc = 8;
  for (std::uint32_t p : {16u, 64u, 256u, 1024u}) {
    const auto central = run_case(p, kPerProc, 0);
    table.add_row({static_cast<std::uint64_t>(p), std::string("central"), central.rounds,
                   static_cast<std::uint64_t>(central.contention), central.qrqw,
                   central.stall_rounds, std::string(central.counted ? "yes" : "NO")});
    const auto width = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(2, wfsort::next_pow2(wfsort::isqrt(p))));
    const auto net = run_case(p, kPerProc, width);
    char label[32];
    std::snprintf(label, sizeof(label), "bitonic[%u]", width);
    table.add_row({static_cast<std::uint64_t>(p), std::string(label), net.rounds,
                   static_cast<std::uint64_t>(net.contention), net.qrqw,
                   net.stall_rounds, std::string(net.counted ? "yes" : "NO")});
    if (!central.counted || !net.counted) return 1;
  }
  table.print();

  std::printf("reading: CRCW hides contention, so the central counter looks optimal\n"
              "there; once concurrent accesses cost time (QRQW charge, stall rounds)\n"
              "the network's per-balancer pressure P*K/(w/2) beats the central cell's\n"
              "P*K — the same trade the paper's fat tree and LC-WAT make.\n");
  return 0;
}
