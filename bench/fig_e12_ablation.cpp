// E12 — ablations of the design choices DESIGN.md calls out.
//
// (a) Placement pruning policy: Figure 6's literal place>0 rule creates
//     subtree OWNERSHIP — under even the WAT's natural phase-entry skew one
//     processor can claim a large subtree, everyone else prunes it, and the
//     tail serializes.  The completion-flag policy restores parallel help.
// (b) Processor spreading: raw PID bits are all zero below depth log P, so
//     helpers stampede down identical paths; hashed decision bits keep them
//     spread at every depth.
// (c) Random-first pickup (Section 2.3): tree depth on sorted input with
//     P << N, with and without the randomized pickup.
// (d) Memory model: the same sort under the Dwork-Herlihy-Waarts stall
//     model, where contention costs time — quantifies how much the
//     deterministic variant's Theta(P) hot-spot would actually hurt.
#include <cmath>
#include <cstdio>

#include "exp/table.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pramsort/driver.h"

using wfsort::exp::Dist;
using wfsort::sim::DetSortConfig;
using wfsort::sim::PlacePrune;

namespace {

std::uint64_t run_rounds(std::span<const pram::Word> keys, std::uint32_t procs,
                         DetSortConfig cfg, pram::MemoryModel model,
                         std::size_t* contention = nullptr) {
  pram::Machine m(pram::MachineOptions{.memory_model = model});
  auto res = wfsort::sim::run_det_sort_sync(m, keys, procs, cfg);
  if (!res.sorted) {
    std::printf("SORT FAILED in ablation run\n");
    std::exit(1);
  }
  if (contention != nullptr) *contention = m.metrics().max_cell_contention();
  return res.run.rounds;
}

std::uint32_t tree_depth(const pram::Machine& m, const wfsort::sim::SortLayout& l) {
  std::uint32_t maxd = 0;
  std::vector<std::pair<pram::Word, std::uint32_t>> stack{{0, 1}};
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    if (node == pram::kEmpty) continue;
    maxd = std::max(maxd, d);
    stack.emplace_back(m.mem().peek(l.child_addr(node, 0)), d + 1);
    stack.emplace_back(m.mem().peek(l.child_addr(node, 1)), d + 1);
  }
  return maxd;
}

}  // namespace

int main() {
  std::printf("E12: ablations (synchronous CRCW PRAM unless noted)\n");

  {
    wfsort::exp::Table table("E12a  placement pruning policy (P = N, rounds)",
                             {"N=P", "no prune", "Figure 6 (placed)",
                              "completion flags", "speedup flags vs Fig.6"});
    for (std::size_t n = 256; n <= (1u << 12); n *= 4) {
      auto keys = wfsort::exp::make_word_keys(n, Dist::kShuffled, 5 + n);
      const auto p = static_cast<std::uint32_t>(n);
      const auto none =
          run_rounds(keys, p, DetSortConfig{.prune = PlacePrune::kNone},
                     pram::MemoryModel::kCrcw);
      const auto placed =
          run_rounds(keys, p, DetSortConfig{.prune = PlacePrune::kPlaced},
                     pram::MemoryModel::kCrcw);
      const auto done =
          run_rounds(keys, p, DetSortConfig{.prune = PlacePrune::kCompleted},
                     pram::MemoryModel::kCrcw);
      table.add_row({static_cast<std::uint64_t>(n), none, placed, done,
                     static_cast<double>(placed) / static_cast<double>(done)});
    }
    table.print();
    std::printf("finding: Figure 6's rule grows ~linearly in N (ownership tail);\n"
                "completion flags restore the polylog growth the lemma expects.\n");
  }

  {
    wfsort::exp::Table table("E12b  processor spreading below depth log P (rounds)",
                             {"N=P", "raw PID bits", "hashed bits", "speedup"});
    for (std::size_t n = 256; n <= (1u << 12); n *= 4) {
      auto keys = wfsort::exp::make_word_keys(n, Dist::kShuffled, 9 + n);
      const auto p = static_cast<std::uint32_t>(n);
      const auto raw = run_rounds(
          keys, p,
          DetSortConfig{.prune = PlacePrune::kCompleted, .raw_pid_spread = true},
          pram::MemoryModel::kCrcw);
      const auto hashed = run_rounds(
          keys, p, DetSortConfig{.prune = PlacePrune::kCompleted},
          pram::MemoryModel::kCrcw);
      table.add_row({static_cast<std::uint64_t>(n), raw, hashed,
                     static_cast<double>(raw) / static_cast<double>(hashed)});
    }
    table.print();
  }

  {
    wfsort::exp::Table table("E12c  random-first pickup, sorted input, P = 2",
                             {"N", "depth sequential", "depth random-first",
                              "3*log2N reference"});
    for (std::size_t n : {256u, 1024u, 4096u}) {
      auto keys = wfsort::exp::make_word_keys(n, Dist::kSorted, 0);
      pram::Machine m_seq;
      auto seq = wfsort::sim::run_det_sort_sync(m_seq, keys, 2);
      pram::Machine m_rf;
      auto rf = wfsort::sim::run_det_sort_sync(m_rf, keys, 2,
                                               DetSortConfig{.random_first = true});
      if (!seq.sorted || !rf.sorted) return 1;
      table.add_row({static_cast<std::uint64_t>(n),
                     static_cast<std::uint64_t>(tree_depth(m_seq, seq.layout)),
                     static_cast<std::uint64_t>(tree_depth(m_rf, rf.layout)),
                     3.0 * std::log2(static_cast<double>(n))});
    }
    table.print();
  }

  {
    wfsort::exp::Table table(
        "E12d  CRCW vs stall memory model (contention costs time; P = N)",
        {"N=P", "CRCW rounds", "stall rounds", "slowdown", "stalls", "max contention"});
    for (std::size_t n = 64; n <= 1024; n *= 4) {
      auto keys = wfsort::exp::make_word_keys(n, Dist::kShuffled, 17 + n);
      const auto p = static_cast<std::uint32_t>(n);
      std::size_t contention = 0;
      const auto crcw = run_rounds(keys, p, DetSortConfig{}, pram::MemoryModel::kCrcw,
                                   &contention);
      pram::Machine m(pram::MachineOptions{.memory_model = pram::MemoryModel::kStall});
      auto res = wfsort::sim::run_det_sort_sync(m, keys, p);
      if (!res.sorted) return 1;
      table.add_row({static_cast<std::uint64_t>(n), crcw, res.run.rounds,
                     static_cast<double>(res.run.rounds) / static_cast<double>(crcw),
                     m.metrics().stalls(), static_cast<std::uint64_t>(contention)});
    }
    table.print();
    std::printf("finding: once contention costs time (Dwork et al. model), the Theta(P)\n"
                "root hot-spot directly inflates the run — the motivation for Section 3.\n");
  }

  return 0;
}
