// E15 — the price of wait-freedom, measured (the Attiya-Lynch-Shavit
// question the paper invokes for its "normal execution" analysis).
//
// Same pivot-tree algorithm, two coordination disciplines:
//   classic:    static element ownership + barriers between phases — the
//               Martel-Gusfield / Chlebus-Vrto ancestry, NOT fault-tolerant;
//   wait-free:  WATs, idempotent traversals, completion flags (Section 2).
// We report the round overhead of wait-freedom in faultless synchronous
// runs, then kill one processor in each and watch the classic sort deadlock
// at a barrier while the wait-free sort completes.
#include <cmath>
#include <cstdio>

#include "exp/table.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pramsort/driver.h"

using wfsort::exp::Dist;

int main() {
  std::printf("E15: classic barrier-synchronized quicksort vs the wait-free sort\n");

  {
    wfsort::exp::Table table("E15a  faultless rounds, P = N (price of wait-freedom)",
                             {"N=P", "classic rounds", "wait-free rounds", "wf/classic ratio",
                              "classic ops", "wait-free ops", "both sorted"});
    for (std::size_t n = 64; n <= (1u << 12); n *= 4) {
      auto keys = wfsort::exp::make_word_keys(n, Dist::kShuffled, 41 + n);
      pram::Machine m_c;
      auto classic = wfsort::sim::run_classic_sort_sync(m_c, keys,
                                                        static_cast<std::uint32_t>(n));
      pram::Machine m_w;
      auto wf = wfsort::sim::run_det_sort_sync(m_w, keys, static_cast<std::uint32_t>(n));
      table.add_row({static_cast<std::uint64_t>(n), classic.run.rounds, wf.run.rounds,
                     static_cast<double>(wf.run.rounds) /
                         static_cast<double>(classic.run.rounds),
                     m_c.metrics().total_ops(), m_w.metrics().total_ops(),
                     std::string(classic.sorted && wf.sorted ? "yes" : "NO")});
      if (!classic.sorted || !wf.sorted) return 1;
    }
    table.print();
  }

  {
    wfsort::exp::Table table("E15b  one processor killed at round 20 (N = P = 256)",
                             {"algorithm", "outcome", "rounds", "sorted"});
    auto keys = wfsort::exp::make_word_keys(256, Dist::kShuffled, 5);

    {
      pram::Machine m(pram::MachineOptions{.max_rounds = 20000});
      pram::SynchronousScheduler sched;
      m.set_round_hook([](pram::Machine& mm, std::uint64_t round) {
        if (round == 20) mm.kill(7);
      });
      auto res = wfsort::sim::run_classic_sort(m, keys, 256, sched);
      table.add_row({std::string("classic (barriers)"),
                     std::string(res.run.hit_round_cap ? "DEADLOCK (round cap hit)"
                                                       : "finished"),
                     res.run.rounds, std::string(res.sorted ? "yes" : "NO")});
      if (!res.run.hit_round_cap) {
        std::printf("unexpected: classic sort survived a killed processor\n");
        return 1;
      }
    }
    {
      pram::Machine m;
      pram::SynchronousScheduler sched;
      m.set_round_hook([](pram::Machine& mm, std::uint64_t round) {
        if (round == 20) mm.kill(7);
      });
      auto res = wfsort::sim::run_det_sort(m, keys, 256, sched);
      table.add_row({std::string("wait-free (Section 2)"),
                     std::string(res.run.all_finished ? "finished" : "stuck"),
                     res.run.rounds, std::string(res.sorted ? "yes" : "NO")});
      if (!res.sorted) return 1;
    }
    table.print();
  }

  std::printf("paper-vs-measured (and a finding): the paper promises wait-freedom for\n"
              "an ADDITIVE log-N bookkeeping cost; measured, the wait-free version is\n"
              "actually FASTER in rounds at P = N, because barrier convoying (everyone\n"
              "waits for the phase straggler, twice) costs more than the WAT lets\n"
              "fast processors save by running ahead into later phases.  And under a\n"
              "single crash the classic algorithm deadlocks while the wait-free one\n"
              "finishes.\n");
  return 0;
}
