// E2 — Lemma 2.4 and the tree-depth claim behind Lemma 2.8.
//
// Lemma 2.4: no build_tree call loops more than N-1 times (pigeon-hole on
// CAS targets).  Lemma 2.8's engine: on random-order input the Quicksort
// tree has depth O(log N) w.h.p. — and on adversarial (sorted) input the
// deterministic variant degenerates, which Section 2.3's randomized pickup
// (E12) and the Section-3 variant repair.  Measured on the native engine.
#include <cmath>
#include <cstdio>
#include <span>

#include "core/sort.h"
#include "exp/table.h"
#include "exp/workloads.h"

using wfsort::exp::Dist;

int main() {
  std::printf("E2: build_tree loop bound (Lemma 2.4) and pivot-tree depth\n");
  std::printf("Claims: max iterations <= N-1 always; depth ~ c*log2(N) on random input\n");
  std::printf("        (c -> 2.99 asymptotically for random BSTs).\n");

  wfsort::exp::Table table("E2  per-N bounds (native engine, 4 threads)",
                           {"N", "input", "max build iters", "bound N-1", "depth",
                            "depth/log2N", "total iters/N"});
  wfsort::exp::Series depth_series;

  for (std::size_t n : {1u << 10, 1u << 12, 1u << 14, 1u << 16}) {
    for (Dist d : {Dist::kShuffled, Dist::kUniform, Dist::kSorted}) {
      auto keys = wfsort::exp::make_u64_keys(n, d, 42 + n);
      wfsort::SortStats stats;
      wfsort::sort(std::span<std::uint64_t>(keys), wfsort::Options{.threads = 4}, &stats);
      const double logn = std::log2(static_cast<double>(n));
      table.add_row({static_cast<std::uint64_t>(n), std::string(wfsort::exp::dist_name(d)),
                     stats.max_build_iters, static_cast<std::uint64_t>(n - 1),
                     static_cast<std::uint64_t>(stats.tree_depth),
                     static_cast<double>(stats.tree_depth) / logn,
                     static_cast<double>(stats.total_build_iters) / static_cast<double>(n)});
      if (d == Dist::kShuffled) {
        depth_series.add(static_cast<double>(n), static_cast<double>(stats.tree_depth));
      }
      if (stats.max_build_iters > n - 1) {
        std::printf("VIOLATION of Lemma 2.4 at N=%zu!\n", n);
        return 1;
      }
    }
  }
  table.print();

  std::printf("depth growth on random input: %s (log-like; exponent ~0)\n",
              wfsort::exp::verdict_exponent(depth_series.power_law_exponent(), 0.0, 0.25)
                  .c_str());
  std::printf("paper-vs-measured: Lemma 2.4 bound held in every run; random-input depth\n"
              "is ~3 log2 N while sorted input (no randomization) degenerates toward O(N).\n");
  return 0;
}
