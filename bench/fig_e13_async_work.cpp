// E13 — the paper's open question (Conclusions): "a detailed analysis of
// the work performed by the algorithm in the asynchronous case is still
// required."  We measure it.
//
// The deterministic and randomized variants run under a family of
// adversarial schedules; for each we report completion rounds, total work
// (memory operations actually executed), work normalized by the
// synchronous run ("work blow-up" — how much redundant effort asynchrony
// induces), and the empirical per-processor step bound.  Schedules:
//   sync          every processor steps every round (the paper's model);
//   subset p      each processor steps with probability p per round;
//   serial        one processor per round (the harshest legal schedule);
//   half-freeze   alternate halves of the machine frozen for W rounds.
#include <cstdio>
#include <functional>
#include <memory>

#include "exp/table.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pram/scheduler.h"
#include "pramsort/driver.h"

using wfsort::exp::Dist;

namespace {

struct ScheduleCase {
  const char* name;
  std::function<std::unique_ptr<pram::Scheduler>()> make;
};

}  // namespace

int main() {
  std::printf("E13: work performed under asynchrony (the paper's open question)\n");

  constexpr std::size_t kN = 256;  // P = N
  const ScheduleCase cases[] = {
      {"sync", [] { return std::make_unique<pram::SynchronousScheduler>(); }},
      {"subset p=0.75",
       [] { return std::make_unique<pram::RandomSubsetScheduler>(0.75, 101); }},
      {"subset p=0.25",
       [] { return std::make_unique<pram::RandomSubsetScheduler>(0.25, 102); }},
      {"half-freeze W=8", [] { return std::make_unique<pram::HalfFreezeScheduler>(8); }},
      {"serial (1/round)", [] { return std::make_unique<pram::RoundRobinScheduler>(1); }},
  };

  for (int variant = 0; variant < 2; ++variant) {
    const char* vname = variant == 0 ? "deterministic" : "randomized LC";
    wfsort::exp::Table table(
        std::string("E13  ") + vname + " sort, P = N = 256",
        {"schedule", "rounds", "total ops", "work blow-up", "max ops/proc", "sorted"});
    double sync_ops = 0;
    for (const auto& c : cases) {
      auto keys = wfsort::exp::make_word_keys(kN, Dist::kShuffled, 31);
      pram::Machine m;
      auto sched = c.make();
      bool sorted = false;
      std::uint64_t rounds = 0;
      if (variant == 0) {
        auto res = wfsort::sim::run_det_sort(m, keys, kN, *sched);
        sorted = res.sorted;
        rounds = res.run.rounds;
      } else {
        auto res = wfsort::sim::run_lc_sort(m, keys, kN, *sched);
        sorted = res.sorted;
        rounds = res.run.rounds;
      }
      const double ops = static_cast<double>(m.metrics().total_ops());
      if (sync_ops == 0) sync_ops = ops;
      table.add_row({std::string(c.name), rounds, m.metrics().total_ops(),
                     ops / sync_ops, m.metrics().max_proc_ops(),
                     std::string(sorted ? "yes" : "NO")});
      if (!sorted) return 1;
    }
    table.print();
  }

  std::printf("findings (an empirical answer to the open question): both variants\n"
              "complete under every schedule, and TOTAL WORK is essentially schedule-\n"
              "independent — within a few percent of the synchronous run, sometimes\n"
              "below it (idle processors skip work that finishers already marked\n"
              "done).  Asynchrony costs wall-clock rounds, not work: under the serial\n"
              "adversary rounds equal total ops, but the ops themselves do not blow\n"
              "up.  The idempotent-and-announced structure appears to make the\n"
              "algorithm work-stable, not merely correct, under asynchrony.\n");
  return 0;
}
