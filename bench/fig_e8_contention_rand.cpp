// E8 — the Section 3 headline: the randomized variant cuts the sort's
// contention from Theta(P) to ~sqrt(P) w.h.p. (synchronous execution).
//
// Both variants run with P = N; we report each run's maximum per-cell
// concurrent accesses, the hottest region, and the fitted growth exponents:
// ~1.0 for deterministic, ~0.5 for the randomized variant.
#include <cmath>
#include <cstdio>

#include "exp/table.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pramsort/driver.h"

using wfsort::exp::Dist;

int main() {
  std::printf("E8: contention, deterministic vs randomized low-contention variant\n");
  std::printf("Claim: Theta(P) vs O(sqrt(P)) w.h.p.\n");

  wfsort::exp::Table table("E8  max contention vs P = N",
                           {"P=N", "det contention", "LC contention", "sqrt(P)",
                            "LC hottest region", "det rounds", "LC rounds",
                            "det QRQW time", "LC QRQW time"});
  wfsort::exp::Series det_series, lc_series;

  for (std::size_t n = 64; n <= (1u << 11); n *= 4) {
    auto keys = wfsort::exp::make_word_keys(n, Dist::kShuffled, 3 + n);

    pram::Machine m_det;
    auto det = wfsort::sim::run_det_sort_sync(m_det, keys, static_cast<std::uint32_t>(n));
    pram::Machine m_lc;
    auto lc = wfsort::sim::run_lc_sort_sync(m_lc, keys, static_cast<std::uint32_t>(n));
    if (!det.sorted || !lc.sorted) {
      std::printf("SORT FAILED at N=%zu (det=%d lc=%d)\n", n, det.sorted, lc.sorted);
      return 1;
    }

    const pram::Region* hot = m_lc.mem().region_of(m_lc.metrics().hottest_addr());
    table.add_row({static_cast<std::uint64_t>(n),
                   static_cast<std::uint64_t>(m_det.metrics().max_cell_contention()),
                   static_cast<std::uint64_t>(m_lc.metrics().max_cell_contention()),
                   static_cast<double>(wfsort::isqrt(n)),
                   std::string(hot != nullptr ? hot->name : "?"), det.run.rounds,
                   lc.run.rounds, m_det.metrics().qrqw_time(), m_lc.metrics().qrqw_time()});
    det_series.add(static_cast<double>(n),
                   static_cast<double>(m_det.metrics().max_cell_contention()));
    lc_series.add(static_cast<double>(n),
                  static_cast<double>(m_lc.metrics().max_cell_contention()));
  }
  table.print();

  std::printf("deterministic contention: %s\n",
              wfsort::exp::verdict_exponent(det_series.power_law_exponent(), 1.0, 0.12)
                  .c_str());
  std::printf("randomized contention:    %s\n",
              wfsort::exp::verdict_exponent(lc_series.power_law_exponent(), 0.5, 0.25)
                  .c_str());
  std::printf("paper-vs-measured: the randomized construction removes the linear-in-P\n"
              "hot-spot; measured growth tracks the sqrt(P) claim.  Under the QRQW\n"
              "cost model (contention costs time) the LC variant's extra rounds are\n"
              "repaid: its charged time overtakes the deterministic variant's as P\n"
              "grows.\n");
  return 0;
}
