// E10 — Section 1.1's comparison: generic routes to wait-free sorting cost
// O(log^2 N)..O(log^3 N) parallel steps, vs this paper's O(log N).
//
// The table joins (a) analytic step-count models for the related-work
// routes (constants normalized to 1 — shapes, not absolute numbers),
// (b) our MEASURED simulator rounds at P = N, and (c) the bitonic network's
// exact stage count.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <span>
#include <vector>

#include "baselines/bitonic.h"
#include "baselines/cost_model.h"
#include "baselines/universal.h"
#include "exp/table.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "core/sort.h"
#include "pramsort/driver.h"

using wfsort::exp::Dist;

int main() {
  std::printf("E10: parallel step counts — this paper vs related-work routes\n");

  {
    wfsort::exp::Table table("E10a  analytic models (P = N, unit constants)",
                             {"N", "this paper O(logN)", "bitonic O(log^2)",
                              "Yen et al. O(log^2)", "wait-free transform O(log^3)"});
    for (double n : {1e3, 1e4, 1e5, 1e6, 1e9}) {
      table.add_row({n, wfsort::baselines::steps_this_paper(n),
                     wfsort::baselines::steps_bitonic_direct(n),
                     wfsort::baselines::steps_yen_fault_tolerant(n),
                     wfsort::baselines::steps_wait_free_transform(n)});
    }
    table.print();
  }

  {
    wfsort::exp::Table table(
        "E10b  measured rounds vs exact network stages",
        {"N=P", "our rounds (sim)", "rounds/log2N", "bitonic stages (exact)",
         "stages*logN (wait-free net)", "ratio transformed/ours"});
    for (std::size_t n = 256; n <= (1u << 12); n *= 4) {
      pram::Machine m;
      auto keys = wfsort::exp::make_word_keys(n, Dist::kShuffled, 21 + n);
      auto res = wfsort::sim::run_det_sort_sync(m, keys, static_cast<std::uint32_t>(n));
      if (!res.sorted) return 1;
      const double logn = std::log2(static_cast<double>(n));
      const double stages = wfsort::baselines::bitonic_stage_count(n);
      const double transformed = stages * logn;  // + the log^2 N memory factor
      table.add_row({static_cast<std::uint64_t>(n), res.run.rounds,
                     static_cast<double>(res.run.rounds) / logn, stages, transformed,
                     transformed / static_cast<double>(res.run.rounds)});
    }
    table.print();
  }

  {
    // Section 1.1's strawman, executed for real: sort via a wait-free
    // universal object (announce + helping).  Wall time explodes because the
    // object serializes — measured here as decided consensus slots and
    // native wall-clock vs the wait-free sorter.
    wfsort::exp::Table table("E10c  universal-object sort, measured (native, 4 threads)",
                             {"N", "universal ms", "wait-free sort ms",
                              "critical path: consensus slots", "critical path: our rounds",
                              "sorted"});
    for (std::size_t n : {2000u, 8000u, 32000u}) {
      auto keys = wfsort::exp::make_u64_keys(n, Dist::kUniform, 77);
      std::vector<std::uint64_t> out;
      std::size_t slots = 0;
      const auto t0 = std::chrono::steady_clock::now();
      wfsort::baselines::universal_object_sort(keys, out, 4, &slots);
      const double uni_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();

      auto keys2 = keys;
      const auto t1 = std::chrono::steady_clock::now();
      wfsort::sort(std::span<std::uint64_t>(keys2), wfsort::Options{.threads = 4});
      const double wf_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t1)
              .count();

      // The structural comparison: the universal log's critical path is one
      // consensus decision per operation (inherently serial), versus the
      // wait-free sort's O(log N) rounds at P = N.
      pram::Machine m;
      auto wkeys = wfsort::exp::make_word_keys(n, Dist::kShuffled, 78);
      auto sim = wfsort::sim::run_det_sort_sync(m, wkeys, std::min<std::uint32_t>(
                                                              static_cast<std::uint32_t>(n), 4096));

      const bool ok = std::is_sorted(out.begin(), out.end()) && out.size() == n &&
                      std::is_sorted(keys2.begin(), keys2.end()) && sim.sorted;
      table.add_row({static_cast<std::uint64_t>(n), uni_ms, wf_ms,
                     static_cast<std::uint64_t>(slots), sim.run.rounds,
                     std::string(ok ? "yes" : "NO")});
      if (!ok) return 1;
    }
    table.print();
    std::printf("note: on a single-core host wall-clock cannot expose the universal\n"
                "object's serialization (everything is time-sliced anyway).  The\n"
                "structural separation is the critical path: N sequential consensus\n"
                "decisions versus polylog rounds — no processor count can ever shorten\n"
                "the former, which is exactly the paper's Section-1.1 argument.\n");
  }

  std::printf("paper-vs-measured: the separation is in the GROWTH columns — our\n"
              "rounds/log2N stays near-flat (c ~ 40-60, the cost of ~7 memory ops per\n"
              "tree node plus duplicated traversals) while the transformed route grows\n"
              "as log^2 N * log N.  At these small N the constants offset the gap;\n"
              "extrapolating both fits, the transformed route falls behind for\n"
              "N >~ 2^20 even before its O(log^2 N) memory blow-up is charged.\n");
  return 0;
}
