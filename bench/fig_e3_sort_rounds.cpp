// E3 — Lemmas 2.7 + 2.8: running time of the deterministic sort.
//
// (a) P = N: rounds vs N should grow ~logarithmically (the paper's O(log N)
//     w.h.p.).  Measured with the completion-flag placement policy; the
//     paper's literal Figure-6 policy appears in the E12 ablation.
// (b) fixed N, varying P: rounds should scale ~ N log N / P until P
//     saturates (the O(N log N / P) optimal-work claim).
#include <cmath>
#include <cstdio>

#include "exp/table.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pramsort/driver.h"

using wfsort::exp::Dist;

int main() {
  std::printf("E3: deterministic sort running time on the synchronous CRCW PRAM\n");
  std::printf("Claims: O(log N) rounds when P = N; O(N log N / P) in general.\n");

  {
    wfsort::exp::Table table("E3a  rounds vs N (P = N, shuffled input)",
                             {"N=P", "rounds", "rounds/log2N", "total ops",
                              "ops/(N log N)", "sorted"});
    wfsort::exp::Series series;
    for (std::size_t n = 64; n <= (1u << 12); n *= 4) {
      pram::Machine m;
      auto keys = wfsort::exp::make_word_keys(n, Dist::kShuffled, 7 + n);
      auto res = wfsort::sim::run_det_sort_sync(m, keys, static_cast<std::uint32_t>(n));
      const double logn = std::log2(static_cast<double>(n));
      table.add_row({static_cast<std::uint64_t>(n), res.run.rounds,
                     static_cast<double>(res.run.rounds) / logn, m.metrics().total_ops(),
                     static_cast<double>(m.metrics().total_ops()) /
                         (static_cast<double>(n) * logn),
                     std::string(res.sorted ? "yes" : "NO")});
      series.add(static_cast<double>(n), static_cast<double>(res.run.rounds));
    }
    table.print();
    std::printf("rounds growth exponent: %s\n",
                wfsort::exp::verdict_exponent(series.power_law_exponent(), 0.0, 0.35)
                    .c_str());
  }

  {
    constexpr std::size_t kN = 4096;
    wfsort::exp::Table table("E3b  rounds vs P (N = 4096, shuffled input)",
                             {"P", "rounds", "rounds*P/(N log N)", "speedup vs P=1",
                              "sorted"});
    double base_rounds = 0;
    wfsort::exp::Series series;
    for (std::uint32_t p = 1; p <= 4096; p *= 8) {
      pram::Machine m;
      auto keys = wfsort::exp::make_word_keys(kN, Dist::kShuffled, 11);
      auto res = wfsort::sim::run_det_sort_sync(m, keys, p);
      if (p == 1) base_rounds = static_cast<double>(res.run.rounds);
      const double nlogn = static_cast<double>(kN) * std::log2(static_cast<double>(kN));
      table.add_row({static_cast<std::uint64_t>(p), res.run.rounds,
                     static_cast<double>(res.run.rounds) * p / nlogn,
                     base_rounds / static_cast<double>(res.run.rounds),
                     std::string(res.sorted ? "yes" : "NO")});
      // Exclude the saturated end from the fit: at P = N the O(log N)
      // round floor dominates and the curve flattens by design.
      if (p < 4096) {
        series.add(static_cast<double>(p), static_cast<double>(res.run.rounds));
      }
    }
    table.print();
    std::printf("rounds vs P exponent (pre-saturation): %s (ideal -1)\n",
                wfsort::exp::verdict_exponent(series.power_law_exponent(), -1.0, 0.3)
                    .c_str());
  }

  std::printf("paper-vs-measured: near-flat rounds/log2N at P=N and ~1/P scaling at\n"
              "fixed N reproduce the optimal-running-time claims' shape.\n");
  return 0;
}
