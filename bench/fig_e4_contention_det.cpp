// E4 — Section 3 intro: the deterministic algorithm suffers Theta(P)
// contention ("at the very start when all processors attempt to install the
// element they are working on at the root").
//
// We run the deterministic sort with P = N and report the maximum number of
// concurrent accesses to any one cell, which region it hit, and the
// contention histogram tail.  Expected: max contention == P (the root's key
// cell in round one), i.e. a power-law exponent of 1 in P.
#include <cstdio>

#include "exp/table.h"
#include "exp/workloads.h"
#include "pram/machine.h"
#include "pramsort/driver.h"

using wfsort::exp::Dist;

int main() {
  std::printf("E4: contention of the deterministic sort (P = N)\n");
  std::printf("Claim: Theta(P) — every processor opens by reading the root pivot.\n");

  wfsort::exp::Table table("E4  max per-cell concurrent accesses vs P",
                           {"P=N", "max contention", "contention/P", "hottest region",
                            "p99 cell-round accesses"});
  wfsort::exp::Series series;

  for (std::size_t n = 64; n <= (1u << 12); n *= 4) {
    pram::Machine m;
    auto keys = wfsort::exp::make_word_keys(n, Dist::kShuffled, 13 + n);
    auto res = wfsort::sim::run_det_sort_sync(m, keys, static_cast<std::uint32_t>(n));
    if (!res.sorted) {
      std::printf("SORT FAILED at N=%zu\n", n);
      return 1;
    }
    const auto& metrics = m.metrics();
    const pram::Region* hot = m.mem().region_of(metrics.hottest_addr());
    table.add_row({static_cast<std::uint64_t>(n),
                   static_cast<std::uint64_t>(metrics.max_cell_contention()),
                   static_cast<double>(metrics.max_cell_contention()) /
                       static_cast<double>(n),
                   std::string(hot != nullptr ? hot->name : "?"),
                   static_cast<std::uint64_t>(metrics.contention_histogram().quantile(0.99))});
    series.add(static_cast<double>(n),
               static_cast<double>(metrics.max_cell_contention()));
  }
  table.print();

  std::printf("contention growth: %s (linear in P, as the paper warns)\n",
              wfsort::exp::verdict_exponent(series.power_law_exponent(), 1.0, 0.1).c_str());
  std::printf("paper-vs-measured: max contention == P at the pivot root every time.\n");
  return 0;
}
