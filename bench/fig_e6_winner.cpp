// E6 — Lemma 3.2: low-contention winner selection (Figure 9).
//
// P processors, arriving within an O(log P) window, each submit a candidate;
// the claim is selection in O(log P) time with expected contention O(log P).
// We report rounds, max contention on the tournament tree, and verify that
// every processor learned the same (valid) winner.
#include <cmath>
#include <cstdio>
#include <vector>

#include "exp/table.h"
#include "pram/machine.h"
#include "pram/subtask.h"
#include "pramsort/lc_programs.h"

namespace {

// Stagger arrival inside a window of `span` rounds, then compete and record
// the learned winner.
pram::Task winner_worker(pram::Ctx& ctx, wfsort::sim::LcSortLayout l, pram::Region out,
                         std::uint32_t span) {
  const std::uint64_t delay = span == 0 ? 0 : ctx.rng().below(span);
  for (std::uint64_t k = 0; k < delay; ++k) (void)co_await ctx.yield();
  const pram::Word w =
      co_await wfsort::sim::select_winner_prog(ctx, l, static_cast<pram::Word>(ctx.pid()));
  co_await ctx.write(out.base + ctx.pid(), w);
}

}  // namespace

int main() {
  std::printf("E6: winner selection (Figure 9), arrivals within a log P window\n");
  std::printf("Claim (Lemma 3.2): O(log P) rounds, expected contention O(log P).\n");

  wfsort::exp::Table table("E6  tournament cost vs P",
                           {"P", "rounds", "rounds/log2P", "winner-tree contention",
                            "bound c*log2P", "agreement"});
  wfsort::exp::Series rounds_series, contention_series;

  for (std::uint32_t p = 16; p <= (1u << 13); p *= 4) {
    pram::Machine m;
    wfsort::sim::LcSortLayout l;
    l.procs = p;
    l.wait_unit = 2;
    l.winner = m.mem().alloc("winner tree", 2 * wfsort::next_pow2(p) - 1, pram::kEmpty);
    auto out = m.mem().alloc("learned winners", p, pram::kEmpty);

    const std::uint32_t span = wfsort::log2_ceil(p);
    for (std::uint32_t i = 0; i < p; ++i) {
      m.spawn([l, out, span](pram::Ctx& ctx) { return winner_worker(ctx, l, out, span); });
    }
    auto r = m.run_synchronous();

    bool agree = r.all_finished;
    const pram::Word first = m.mem().peek(out.base);
    for (std::uint32_t i = 0; i < p && agree; ++i) {
      const pram::Word w = m.mem().peek(out.base + i);
      agree = (w == first) && w >= 0 && w < static_cast<pram::Word>(p);
    }

    const double logp = std::log2(static_cast<double>(p));
    table.add_row({static_cast<std::uint64_t>(p), r.rounds,
                   static_cast<double>(r.rounds) / logp,
                   static_cast<std::uint64_t>(
                       m.metrics().region_contention().at("winner tree")),
                   4.0 * logp, std::string(agree ? "yes" : "NO")});
    rounds_series.add(p, static_cast<double>(r.rounds));
    contention_series.add(
        p, static_cast<double>(m.metrics().region_contention().at("winner tree")));
    if (!agree) return 1;
  }
  table.print();

  std::printf("rounds growth: %s (log-like)\n",
              wfsort::exp::verdict_exponent(rounds_series.power_law_exponent(), 0.0, 0.3)
                  .c_str());
  // The contention claim is O(log P): check the measured values stay under
  // c * log2(P) row by row (a power-law fit is the wrong lens for a log
  // target — log P itself has a small positive apparent exponent).
  double worst_ratio = 0.0;
  for (std::size_t i = 0; i < contention_series.xs().size(); ++i) {
    worst_ratio = std::max(worst_ratio, contention_series.ys()[i] /
                                            std::log2(contention_series.xs()[i]));
  }
  std::printf("contention bound: max contention / log2(P) = %.2f (%s c*logP with c<=4)\n",
              worst_ratio, worst_ratio <= 4.0 ? "WITHIN" : "EXCEEDS");
  std::printf("paper-vs-measured: a single winner is always chosen, everyone learns it,\n"
              "and tournament-tree contention stays near log P instead of P.\n");
  return 0;
}
