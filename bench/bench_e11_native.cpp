// E11 — the Attiya-et-al. question "are wait-free algorithms fast?" asked
// natively: wall-clock of the wait-free sorter in the NORMAL (faultless)
// execution against sequential and conventional parallel baselines.
//
// Notes for reading the numbers: the wait-free sorter performs O(N) CAS
// installs plus redundant traversals by design — its wins are progress
// guarantees (E9), not raw single-machine throughput; the paper makes the
// same point by analysing "normal executions" separately.  Thread counts
// beyond the host's cores only add scheduling noise.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <span>

#include "baselines/bitonic.h"
#include "baselines/lock_parallel_quicksort.h"
#include "baselines/parallel_mergesort.h"
#include "baselines/sequential.h"
#include "core/pool.h"
#include "core/sort.h"
#include "exp/workloads.h"

namespace {

using wfsort::exp::Dist;

std::vector<std::uint64_t> input(std::size_t n) {
  return wfsort::exp::make_u64_keys(n, Dist::kUniform, 424242);
}

void BM_StdSort(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto v = base;
    std::sort(v.begin(), v.end());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SequentialQuicksort(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto v = base;
    wfsort::baselines::quicksort(std::span<std::uint64_t>(v));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_WaitFreeSortDet(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto v = base;
    wfsort::sort(std::span<std::uint64_t>(v), wfsort::Options{.threads = threads});
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_WaitFreeSortDetPartition(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto v = base;
    wfsort::sort(std::span<std::uint64_t>(v),
                 wfsort::Options{.threads = threads,
                                 .phase1 = wfsort::Phase1::kPartition});
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_WaitFreeSortLc(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto v = base;
    wfsort::sort(std::span<std::uint64_t>(v),
                 wfsort::Options{.threads = threads,
                                 .variant = wfsort::Variant::kLowContention});
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Cold vs pooled (ISSUE 10): BM_WaitFreeSortCold is BM_WaitFreeSortDet
// registered over the small-N sweep — every iteration pays the full setup
// bill (thread spawn + storage allocation).  BM_WaitFreeSortPooled drives
// the same engine through the process-wide SortPool, so consecutive
// iterations are exactly the back-to-back submit pattern the pool exists
// for: recycled arenas, parked workers, caller-only fast path below
// kCallerOnlyCutoff.  Outputs are bit-identical; only setup is amortized.
void BM_WaitFreeSortCold(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto v = base;
    wfsort::sort(std::span<std::uint64_t>(v), wfsort::Options{.threads = threads});
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_WaitFreeSortPooled(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto v = base;
    wfsort::default_pool().sort(std::span<std::uint64_t>(v),
                                wfsort::Options{.threads = threads});
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_LockParallelQuicksort(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto v = base;
    wfsort::baselines::lock_parallel_quicksort(std::span<std::uint64_t>(v), threads);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ParallelMergesort(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto v = base;
    wfsort::baselines::parallel_mergesort(std::span<std::uint64_t>(v), threads);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BitonicThreaded(benchmark::State& state) {
  const auto base = input(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  for (auto _ : state) {
    auto v = base;
    wfsort::baselines::bitonic_threaded_sort(std::span<std::uint64_t>(v), threads);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_StdSort)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SequentialQuicksort)->Arg(1 << 14)->Arg(1 << 16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WaitFreeSortDet)
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 4})
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_WaitFreeSortDetPartition)
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 4})
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_WaitFreeSortLc)
    ->Args({1 << 14, 4})
    ->Args({1 << 20, 4})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
// The small-N sweep 2^10..2^16 (where setup IS the latency), plus a 2^20
// parity row (pooled must be within noise of cold at large N).  Microsecond
// units: the pooled small-N rows are far below a millisecond.
BENCHMARK(BM_WaitFreeSortCold)
    ->Args({1 << 10, 4})
    ->Args({1 << 12, 4})
    ->Args({1 << 14, 4})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 4})
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.2);
BENCHMARK(BM_WaitFreeSortPooled)
    ->Args({1 << 10, 4})
    ->Args({1 << 12, 4})
    ->Args({1 << 14, 4})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 4})
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.2);
BENCHMARK(BM_LockParallelQuicksort)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_ParallelMergesort)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_BitonicThreaded)
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 4})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

// Custom main instead of BENCHMARK_MAIN(): stamp this binary's own build
// type into the report context.  The distro's libbenchmark ships a fixed
// "library_build_type" that describes how the LIBRARY was compiled, not this
// suite — the bench scripts and CI read wfsort_build_type to refuse
// committing numbers from a debug build.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("wfsort_build_type", "release");
#else
  benchmark::AddCustomContext("wfsort_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
