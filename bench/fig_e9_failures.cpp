// E9 — wait-freedom under failures (the paper's Section 1 motivation).
//
// Native std::thread execution with injected faults:
//  (a) crash sweep: kill 0..T-1 of T workers at staggered points; the sort
//      must complete whenever at least one worker survives, with work
//      overhead that shrinks as survivors grow;
//  (b) page-fault sweep: suspend workers mid-sort; completion time degrades
//      gracefully instead of blocking;
//  (c) contrast: the lock-based parallel quicksort under the same crash
//      plan strands work (completes=false) — the failure mode wait-freedom
//      eliminates.
#include <chrono>
#include <cstdio>
#include <span>

#include "baselines/lock_parallel_quicksort.h"
#include "core/sort.h"
#include "exp/table.h"
#include "exp/workloads.h"

using Clock = std::chrono::steady_clock;
using wfsort::exp::Dist;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("E9: completion under crashes and stalls (native, %u-thread crews)\n", 8u);
  std::printf("Claim: the sort completes as long as one worker keeps taking steps.\n");

  constexpr std::size_t kN = 1 << 16;
  constexpr std::uint32_t kThreads = 8;

  {
    wfsort::exp::Table table("E9a  crash sweep (N = 65536, 8 workers)",
                             {"workers killed", "survivors", "completed", "sorted",
                              "build iters/N", "wall ms"});
    for (std::uint32_t kills = 0; kills < kThreads; ++kills) {
      auto keys = wfsort::exp::make_u64_keys(kN, Dist::kUniform, 100 + kills);
      auto expected = keys;
      std::sort(expected.begin(), expected.end());

      wfsort::runtime::FaultPlan plan(kThreads);
      for (std::uint32_t t = 0; t < kills; ++t) {
        plan.crash_at(kThreads - 1 - t, 50 + 997 * t);  // staggered across phases
      }
      wfsort::SortStats stats;
      const auto t0 = Clock::now();
      const bool ok = wfsort::sort_with_faults(
          std::span<std::uint64_t>(keys), wfsort::Options{.threads = kThreads}, plan,
          &stats);
      const double ms = ms_since(t0);
      table.add_row({static_cast<std::uint64_t>(kills),
                     static_cast<std::uint64_t>(kThreads - kills),
                     std::string(ok ? "yes" : "NO"),
                     std::string(ok && keys == expected ? "yes" : "NO"),
                     static_cast<double>(stats.total_build_iters) / kN, ms});
      if (!ok) return 1;
    }
    table.print();
  }

  {
    wfsort::exp::Table table("E9b  page-fault sweep (suspend k workers for 20 ms)",
                             {"suspended", "completed", "sorted", "wall ms"});
    for (std::uint32_t sleeps : {0u, 2u, 4u, 7u}) {
      auto keys = wfsort::exp::make_u64_keys(kN, Dist::kUniform, 200 + sleeps);
      auto expected = keys;
      std::sort(expected.begin(), expected.end());
      wfsort::runtime::FaultPlan plan(kThreads);
      for (std::uint32_t t = 0; t < sleeps; ++t) {
        plan.sleep_at(t, 100 + 37 * t, std::chrono::microseconds(20000));
      }
      const auto t0 = Clock::now();
      const bool ok = wfsort::sort_with_faults(
          std::span<std::uint64_t>(keys), wfsort::Options{.threads = kThreads}, plan);
      table.add_row({static_cast<std::uint64_t>(sleeps), std::string(ok ? "yes" : "NO"),
                     std::string(ok && keys == expected ? "yes" : "NO"), ms_since(t0)});
      if (!ok) return 1;
    }
    table.print();
  }

  {
    wfsort::exp::Table table("E9c  lock-based quicksort under the same crash plan",
                             {"workers killed", "runs", "stranded runs",
                              "stranded fraction"});
    for (std::uint32_t kills : {2u, 4u, 7u}) {
      int stranded = 0;
      constexpr int kRuns = 8;
      for (int run = 0; run < kRuns; ++run) {
        auto keys = wfsort::exp::make_u64_keys(kN, Dist::kUniform, 300 + run);
        wfsort::runtime::FaultPlan plan(kThreads);
        for (std::uint32_t t = 0; t < kills; ++t) plan.crash_at(t, 2 + run + t);
        auto r = wfsort::baselines::lock_parallel_quicksort(std::span<std::uint64_t>(keys),
                                                            kThreads, &plan);
        if (!r.completed) ++stranded;
      }
      table.add_row({static_cast<std::uint64_t>(kills), static_cast<std::int64_t>(kRuns),
                     static_cast<std::int64_t>(stranded),
                     static_cast<double>(stranded) / kRuns});
    }
    table.print();
  }

  std::printf("paper-vs-measured: every faulted wait-free run completed with a correct\n"
              "result; the conventional lock-based pool strands work under the same\n"
              "faults.  Work overhead decreases as more workers survive.\n");
  return 0;
}
