// E7 — Section 3.2: write-most fills the fat tree w.h.p. with each of the P
// processors writing only log P random cells, at expected contention
// sqrt(P) on the authoritative slice.
//
// Setup mirrors the sort's stage D: gout holds the winner slice's sorted
// element indices; every processor runs write_most_fat_prog.  We report the
// fill fraction, the contention on the slice (reads) and on the fat cells
// (writes), and how misses fall as the per-processor quota rises.
#include <cmath>
#include <cstdio>

#include "exp/table.h"
#include "lowcontention/fat_tree.h"
#include "pram/machine.h"
#include "pramsort/lc_programs.h"

namespace {

pram::Task fill_worker(pram::Ctx& ctx, wfsort::sim::LcSortLayout l) {
  co_await wfsort::sim::write_most_fat_prog(ctx, l, 0);
}

double fat_fill_fraction(const pram::Machine& m, const wfsort::sim::LcSortLayout& l) {
  std::uint64_t filled = 0;
  const std::uint64_t cells = l.slice * l.copies;
  for (std::uint64_t c = 0; c < cells; ++c) {
    if (m.mem().peek(l.fat.base + c) != pram::kEmpty) ++filled;
  }
  return static_cast<double>(filled) / static_cast<double>(cells);
}

}  // namespace

int main() {
  std::printf("E7: write-most fat-tree fill, P processors x (log P + 2) writes\n");
  std::printf("Claims: fat tree full w.h.p.; ~sqrt(P) readers per slice cell.\n");

  wfsort::exp::Table table("E7  fill and contention vs P",
                           {"P", "S (fat nodes)", "copies", "fill %", "slice contention",
                            "sqrt(P)", "fat-cell contention", "rounds"});
  wfsort::exp::Series slice_contention;

  for (std::uint32_t p = 64; p <= (1u << 12); p *= 4) {
    pram::Machine m;
    wfsort::sim::LcSortLayout l;
    l.procs = p;
    // The paper's P = N sizing: S = sqrt(P) nodes, sqrt(P) copies each.
    l.levels = std::max<std::uint32_t>(1, wfsort::log2_floor(wfsort::isqrt(p) + 1));
    l.slice = (std::uint64_t{1} << l.levels) - 1;
    l.copies = static_cast<std::uint32_t>(p / l.slice + 1);
    l.gout = m.mem().alloc("winner slice", l.slice, 0);
    l.fat = m.mem().alloc("fat tree", l.slice * l.copies, pram::kEmpty);
    for (std::uint64_t r = 0; r < l.slice; ++r) {
      m.mem().poke(l.gout.base + r, static_cast<pram::Word>(1000 + r));
    }

    for (std::uint32_t i = 0; i < p; ++i) {
      m.spawn([l](pram::Ctx& ctx) { return fill_worker(ctx, l); });
    }
    auto r = m.run_synchronous();
    if (!r.all_finished) return 1;

    const auto& rc = m.metrics().region_contention();
    table.add_row({static_cast<std::uint64_t>(p), l.slice,
                   static_cast<std::uint64_t>(l.copies), 100.0 * fat_fill_fraction(m, l),
                   static_cast<std::uint64_t>(rc.at("winner slice")),
                   static_cast<double>(wfsort::isqrt(p)),
                   static_cast<std::uint64_t>(rc.at("fat tree")), r.rounds});
    slice_contention.add(p, static_cast<double>(rc.at("winner slice")));
  }
  table.print();

  std::printf("slice contention growth: %s (expected sqrt: exponent ~0.5)\n",
              wfsort::exp::verdict_exponent(slice_contention.power_law_exponent(), 0.5, 0.2)
                  .c_str());
  std::printf("paper-vs-measured: log P random writes per processor fill ~all of the\n"
              "fat tree, and per-cell read pressure tracks sqrt(P) as argued in 3.2.\n");
  return 0;
}
