// Performance of the simulator itself (not an experiment about the paper —
// a regression harness for the substrate).  Reports simulated memory
// operations per second for representative workloads so simulator changes
// can be checked for slowdowns.
//
// Each workload sweeps the `simt` dimension (MachineOptions::sim_threads):
// simt:1 is the sequential flat-array engine, simt:2/4 the sharded
// two-phase-commit engine.  Observables are bit-identical across the sweep
// (tests/test_determinism.cpp), so any sim_ops/s difference is pure engine
// overhead or speedup.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <initializer_list>

#include "exp/workloads.h"
#include "pram/machine.h"
#include "pramsort/driver.h"
#include "workalloc/write_all.h"

namespace {

pram::MachineOptions bench_opts(benchmark::State& state) {
  pram::MachineOptions opts;
  opts.sim_threads = static_cast<std::uint32_t>(state.range(1));
  return opts;  // par_round_min stays at its default: honest production config
}

void BM_SimWriteAllWat(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t ops = 0;
  for (auto _ : state) {
    pram::Machine m(bench_opts(state));
    pram::SynchronousScheduler sched;
    auto out = wfsort::sim::write_all_wat(m, n, static_cast<std::uint32_t>(n), sched);
    benchmark::DoNotOptimize(out.complete);
    ops += m.metrics().total_ops();
  }
  state.counters["sim_ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void BM_SimDetSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto keys = wfsort::exp::make_word_keys(n, wfsort::exp::Dist::kShuffled, 3);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    pram::Machine m(bench_opts(state));
    auto res = wfsort::sim::run_det_sort_sync(m, keys, static_cast<std::uint32_t>(n));
    benchmark::DoNotOptimize(res.sorted);
    ops += m.metrics().total_ops();
  }
  state.counters["sim_ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void BM_SimLcSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto keys = wfsort::exp::make_word_keys(n, wfsort::exp::Dist::kShuffled, 4);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    pram::Machine m(bench_opts(state));
    auto res = wfsort::sim::run_lc_sort_sync(m, keys, static_cast<std::uint32_t>(n));
    benchmark::DoNotOptimize(res.sorted);
    ops += m.metrics().total_ops();
  }
  state.counters["sim_ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void sim_thread_sweep(benchmark::internal::Benchmark* b,
                      std::initializer_list<std::int64_t> sizes) {
  b->ArgNames({"n", "simt"});
  for (std::int64_t n : sizes) {
    for (std::int64_t simt : {1, 2, 4}) b->Args({n, simt});
  }
  b->Unit(benchmark::kMillisecond);
}

}  // namespace

BENCHMARK(BM_SimWriteAllWat)->Apply([](benchmark::internal::Benchmark* b) {
  sim_thread_sweep(b, {1 << 10, 1 << 13, 1 << 15});
});
BENCHMARK(BM_SimDetSort)->Apply([](benchmark::internal::Benchmark* b) {
  sim_thread_sweep(b, {1 << 8, 1 << 10, 1 << 12});
});
BENCHMARK(BM_SimLcSort)->Apply([](benchmark::internal::Benchmark* b) {
  sim_thread_sweep(b, {1 << 8});
});

// Custom main instead of BENCHMARK_MAIN(): stamp this binary's own build
// type into the report context (see bench_e11_native.cpp) so the bench
// scripts can refuse to commit debug-build numbers.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("wfsort_build_type", "release");
#else
  benchmark::AddCustomContext("wfsort_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
