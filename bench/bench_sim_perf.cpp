// Performance of the simulator itself (not an experiment about the paper —
// a regression harness for the substrate).  Reports simulated memory
// operations per second for representative workloads so simulator changes
// can be checked for slowdowns.
#include <benchmark/benchmark.h>

#include "exp/workloads.h"
#include "pram/machine.h"
#include "pramsort/driver.h"
#include "workalloc/write_all.h"

namespace {

void BM_SimWriteAllWat(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t ops = 0;
  for (auto _ : state) {
    pram::Machine m;
    pram::SynchronousScheduler sched;
    auto out = wfsort::sim::write_all_wat(m, n, static_cast<std::uint32_t>(n), sched);
    benchmark::DoNotOptimize(out.complete);
    ops += m.metrics().total_ops();
  }
  state.counters["sim_ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void BM_SimDetSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto keys = wfsort::exp::make_word_keys(n, wfsort::exp::Dist::kShuffled, 3);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    pram::Machine m;
    auto res = wfsort::sim::run_det_sort_sync(m, keys, static_cast<std::uint32_t>(n));
    benchmark::DoNotOptimize(res.sorted);
    ops += m.metrics().total_ops();
  }
  state.counters["sim_ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void BM_SimLcSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto keys = wfsort::exp::make_word_keys(n, wfsort::exp::Dist::kShuffled, 4);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    pram::Machine m;
    auto res = wfsort::sim::run_lc_sort_sync(m, keys, static_cast<std::uint32_t>(n));
    benchmark::DoNotOptimize(res.sorted);
    ops += m.metrics().total_ops();
  }
  state.counters["sim_ops/s"] =
      benchmark::Counter(static_cast<double>(ops), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_SimWriteAllWat)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimDetSort)->Arg(1 << 8)->Arg(1 << 10)->Arg(1 << 12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimLcSort)->Arg(1 << 8)->Unit(benchmark::kMillisecond);

// Custom main instead of BENCHMARK_MAIN(): stamp this binary's own build
// type into the report context (see bench_e11_native.cpp) so the bench
// scripts can refuse to commit debug-build numbers.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("wfsort_build_type", "release");
#else
  benchmark::AddCustomContext("wfsort_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
